#include "support/jsonlite.h"

#include <cctype>

namespace uchecker::jsonlite {
namespace {

constexpr int kMaxDepth = 256;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (at_end() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!at_end()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (at_end()) return false;
        const char esc = text[pos++];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (at_end() || !std::isxdigit(
                                  static_cast<unsigned char>(text[pos]))) {
                return false;
              }
              ++pos;
            }
            break;
          }
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos;
    }
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (at_end()) return false;
    const char c = peek();
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object(int depth) {
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(int depth) {
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool valid(std::string_view text) {
  Parser p{text};
  if (!p.value(0)) return false;
  p.skip_ws();
  return p.at_end();
}

}  // namespace uchecker::jsonlite
