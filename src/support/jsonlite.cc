#include "support/jsonlite.h"

#include <cctype>
#include <cstdlib>

namespace uchecker::jsonlite {
namespace {

constexpr int kMaxDepth = 256;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (at_end() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!at_end()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (at_end()) return false;
        const char esc = text[pos++];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (at_end() || !std::isxdigit(
                                  static_cast<unsigned char>(text[pos]))) {
                return false;
              }
              ++pos;
            }
            break;
          }
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos;
    }
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (at_end()) return false;
    const char c = peek();
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object(int depth) {
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(int depth) {
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool valid(std::string_view text) {
  Parser p{text};
  if (!p.value(0)) return false;
  p.skip_ws();
  return p.at_end();
}

namespace {

// Appends `cp` (a Unicode scalar value) to `out` as UTF-8.
void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

// DOM-building twin of the validating Parser above. The grammar is the
// same; this one additionally decodes string escapes and materializes
// values, so valid() stays allocation-free for hot CI checks.
struct DomParser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (at_end() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) return false;
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  }

  bool string(std::string& out) {
    out.clear();
    if (!consume('"')) return false;
    while (!at_end()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with \uDC00-\uDFFF.
            unsigned low = 0;
            if (!consume('\\') || !consume('u') || !hex4(low) ||
                low < 0xDC00 || low > 0xDFFF) {
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // lone low surrogate
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool number(double& out) {
    const std::size_t start = pos;
    consume('-');
    const auto digits = [this] {
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
      return true;
    };
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    out = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                      nullptr);
    return true;
  }

  bool value(Value& out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (at_end()) return false;
    const char c = peek();
    if (c == '{') return object(out, depth);
    if (c == '[') return array(out, depth);
    if (c == '"') {
      out.kind_ = Value::Kind::kString;
      return string(out.string_);
    }
    if (c == 't') {
      out.kind_ = Value::Kind::kBool;
      out.bool_ = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind_ = Value::Kind::kBool;
      out.bool_ = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind_ = Value::Kind::kNull;
      return literal("null");
    }
    out.kind_ = Value::Kind::kNumber;
    return number(out.number_);
  }

  bool object(Value& out, int depth) {
    out.kind_ = Value::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      Value member;
      if (!value(member, depth + 1)) return false;
      // Duplicate keys keep the last occurrence.
      bool replaced = false;
      for (auto& [k, v] : out.members_) {
        if (k == key) {
          v = std::move(member);
          replaced = true;
          break;
        }
      }
      if (!replaced) out.members_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(Value& out, int depth) {
    out.kind_ = Value::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      Value element;
      if (!value(element, depth + 1)) return false;
      out.items_.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

std::optional<Value> parse(std::string_view text) {
  DomParser p{text};
  Value root;
  if (!p.value(root, 0)) return std::nullopt;
  p.skip_ws();
  if (!p.at_end()) return std::nullopt;
  return root;
}

}  // namespace uchecker::jsonlite
