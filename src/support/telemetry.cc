#include "support/telemetry.h"

#include <algorithm>
#include <cmath>

#include "support/flight_recorder.h"

namespace uchecker::telemetry {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = MetricsRegistry::default_latency_buckets_ms();
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::vector<std::uint64_t> Histogram::cumulative_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out(counts_.size(), 0);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    out[i] = running;
  }
  return out;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t next = seen + counts_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within [lo, hi], the value range of bucket i. The
      // overflow bucket has no upper bound; report the observed max.
      if (i == bounds_.size()) return max_;
      const double hi = bounds_[i];
      const double lo = i == 0 ? std::min(min_, hi) : bounds_[i - 1];
      const double into =
          (target - static_cast<double>(seen)) / static_cast<double>(counts_[i]);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    seen = next;
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

std::vector<double> MetricsRegistry::default_latency_buckets_ms() {
  return {0.1, 0.25, 0.5, 1, 2.5, 5,    10,   25,    50,    100,
          250, 500,  1000, 2500, 5000, 10000, 30000, 60000};
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

void MetricsRegistry::set_exemplar(std::string_view metric,
                                   std::string_view trace_id) {
  if (trace_id.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = exemplars_.find(metric);
  if (it == exemplars_.end()) {
    exemplars_.emplace(std::string(metric), std::string(trace_id));
  } else {
    it->second = std::string(trace_id);
  }
}

std::map<std::string, std::string> MetricsRegistry::exemplars() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {exemplars_.begin(), exemplars_.end()};
}

// ---------------------------------------------------------------------------
// ScanTrace

std::uint64_t ScanTrace::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void ScanTrace::set_flight_recorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  flight_ = recorder;
}

SpanId ScanTrace::begin_span(std::string_view name, std::string_view detail) {
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = static_cast<SpanId>(spans_.size());
  span.parent = open_stack_.empty() ? kNoSpan : open_stack_.back();
  span.name = std::string(name);
  span.detail = std::string(detail);
  span.start_us = now_us();
  open_stack_.push_back(span.id);
  spans_.push_back(std::move(span));
  if (flight_ != nullptr) {
    flight_->record(FlightKind::kPhaseBegin, name);
  }
  return spans_.back().id;
}

void ScanTrace::end_span(SpanId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kNoSpan || id >= spans_.size()) return;
  const std::uint64_t now = now_us();
  // RAII callers close in strict LIFO order; if something closed a span
  // without closing its children first, close those descendants too so
  // the tree stays well-formed.
  while (!open_stack_.empty()) {
    const SpanId top = open_stack_.back();
    open_stack_.pop_back();
    Span& span = spans_[top];
    if (span.open) {
      span.open = false;
      span.dur_us = now - span.start_us;
      if (flight_ != nullptr) {
        flight_->record(FlightKind::kPhaseEnd, span.name, span.dur_us);
      }
    }
    if (top == id) return;
  }
  // `id` was not on the stack (already closed); nothing else to do.
}

void ScanTrace::sample_progress(std::uint64_t live_paths, std::uint64_t objects,
                                std::uint64_t heap_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (flight_ != nullptr) {
    flight_->record(FlightKind::kProgress, {}, live_paths, objects);
  }
  if (progress_skip_ > 0) {
    --progress_skip_;
    return;
  }
  progress_skip_ = progress_stride_ - 1;
  if (progress_.size() >= kMaxProgressSamples) {
    // Decimate: keep every other sample, double the stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < progress_.size(); r += 2) {
      progress_[w++] = progress_[r];
    }
    progress_.resize(w);
    progress_stride_ *= 2;
  }
  progress_.push_back(ProgressSample{now_us(), live_paths, objects, heap_bytes});
}

void ScanTrace::record_event(std::string_view name, std::string_view detail) {
  std::lock_guard<std::mutex> lock(mu_);
  if (flight_ != nullptr) {
    flight_->record(FlightKind::kEvent, name);
  }
  events_.push_back(
      TraceEvent{now_us(), std::string(name), std::string(detail)});
}

void ScanTrace::record_solver_call(std::uint64_t dur_us, unsigned attempts,
                                   unsigned escalations,
                                   bool deadline_exceeded,
                                   std::string_view result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (flight_ != nullptr) {
    flight_->record(FlightKind::kSolverCall, result, dur_us, attempts);
  }
  SolverCallSample s;
  s.dur_us = dur_us;
  const std::uint64_t now = now_us();
  s.t_us = now >= dur_us ? now - dur_us : 0;
  s.attempts = attempts;
  s.escalations = escalations;
  s.deadline_exceeded = deadline_exceeded;
  s.result = std::string(result);
  solver_calls_.push_back(std::move(s));
}

TraceSnapshot ScanTrace::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSnapshot snap;
  snap.name = name_;
  snap.trace_id = trace_id_;
  snap.tid = tid_;
  snap.spans = spans_;
  snap.progress = progress_;
  snap.solver_calls = solver_calls_;
  snap.events = events_;
  return snap;
}

// ---------------------------------------------------------------------------
// Telemetry

ScanTrace& Telemetry::begin_scan(std::string name, std::string trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto tid = static_cast<std::uint32_t>(traces_.size() + 1);
  traces_.push_back(std::unique_ptr<ScanTrace>(
      new ScanTrace(std::move(name), std::move(trace_id), epoch_, tid)));
  return *traces_.back();
}

std::vector<const ScanTrace*> Telemetry::traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const ScanTrace*> out;
  out.reserve(traces_.size());
  for (const auto& t : traces_) out.push_back(t.get());
  return out;
}

std::vector<PhaseStats> Telemetry::fleet_phase_stats() const {
  std::map<std::string, std::vector<double>> by_phase;  // durations, ms
  for (const ScanTrace* trace : traces()) {
    const TraceSnapshot snap = trace->snapshot();
    for (const Span& span : snap.spans) {
      if (span.open) continue;
      by_phase[span.name].push_back(static_cast<double>(span.dur_us) / 1000.0);
    }
  }

  const auto percentile = [](const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  };

  std::vector<PhaseStats> out;
  for (auto& [phase, durs] : by_phase) {
    std::sort(durs.begin(), durs.end());
    PhaseStats s;
    s.phase = phase;
    s.count = durs.size();
    for (double d : durs) s.total_ms += d;
    s.p50_ms = percentile(durs, 0.50);
    s.p95_ms = percentile(durs, 0.95);
    s.p99_ms = percentile(durs, 0.99);
    s.max_ms = durs.back();
    out.push_back(std::move(s));
  }

  // Pipeline phases in pipeline order first; everything else after, by
  // name (std::map already yielded name order).
  static constexpr std::string_view kPipelineOrder[] = {
      "scan", "parse", "locality", "interp", "translate", "solve"};
  const auto rank = [](std::string_view name) {
    for (std::size_t i = 0; i < std::size(kPipelineOrder); ++i) {
      if (name == kPipelineOrder[i]) return i;
    }
    return std::size(kPipelineOrder);
  };
  std::stable_sort(out.begin(), out.end(),
                   [&](const PhaseStats& a, const PhaseStats& b) {
                     return rank(a.phase) < rank(b.phase);
                   });
  return out;
}

void Telemetry::set_progress_sink(
    std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  progress_sink_ = std::move(sink);
}

void Telemetry::emit_progress(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (progress_sink_) progress_sink_(json_line);
}

}  // namespace uchecker::telemetry
