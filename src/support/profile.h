// Engine introspection: the path-explosion profiler.
//
// The paper's failure mode (and this reproduction's one corpus false
// negative, Cimy User Extra Fields) is a scan that dies of path
// explosion with nothing to show for it but a budget_exhausted flag.
// This module attributes the explosion to its causes, per analysis
// root:
//
//   (a) path forks -> the source fork site that spawned them
//       (conditional / switch / loop unroll / foreach / try-catch /
//       bounded call inline), with *cumulative* counts (paths spawned
//       by the whole construct, nested sites included) and *self*
//       counts (cumulative minus nested), so the top-of-chain loop is
//       distinguishable from its body;
//   (b) solver wall time and query counts -> the sink and constraint
//       origin that issued them, warm SolverQueryCache/memo hits
//       included (zero wall time, attributed all the same);
//   (c) heap-graph object and arena byte growth -> the fork depth that
//       allocated it, sampled on the interpreter's existing
//       deadline-poll stride.
//
// When a root ends incomplete the detector folds this data into a
// budget post-mortem (top-10 fork sites, live-path histogram over
// time, the dominant loop) attached to the verdict.
//
// Overhead contract: profiling is opt-in. When no PathProfiler is
// attached every hook is a single null-pointer test, exactly like the
// telemetry trace hooks. When attached, the recorder is guarded by one
// mutex so snapshot() can race the interpreter thread (TSan-clean);
// contention is nil because one root is interpreted by one thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace uchecker::jsonlite {
class Value;
}  // namespace uchecker::jsonlite

namespace uchecker::profile {

// The fork constructs the interpreter attributes paths to.
enum class ForkKind {
  kConditional,  // if / elseif chains
  kSwitch,
  kLoop,     // while / for / do-while bounded unroll
  kForeach,  // known-array unroll or skip/enter on unknown arrays
  kTryCatch,
  kCall,  // bounded user-function inlining
};

[[nodiscard]] std::string_view fork_kind_name(ForkKind kind);
[[nodiscard]] std::optional<ForkKind> fork_kind_from_name(
    std::string_view name);

// One source fork site, ranked by the paths it spawned.
struct ForkSiteStats {
  // Human-readable "file:line" anchor. The interpreter records raw
  // (file, line) ids; the detector resolves them against its
  // SourceManager. Until resolved the rendering is "file#<id>:<line>".
  std::string site;
  std::uint32_t file = 0;  // raw FileId value (0 when unknown)
  std::uint32_t line = 0;
  ForkKind kind = ForkKind::kConditional;
  std::string detail;  // "if", "while", "foreach", callee name, ...
  std::uint64_t visits = 0;
  // Paths spawned across the whole construct, nested fork sites
  // included (the env-count delta over the construct, summed per
  // visit)...
  std::uint64_t cumulative_paths = 0;
  // ...and with nested sites' cumulative counts subtracted, so a loop
  // is distinguishable from the conditionals in its body.
  std::uint64_t self_paths = 0;
};

// Solver cost attributed to the sink occurrence that issued the query.
struct SolverSiteStats {
  std::string sink;    // sink name, e.g. "move_uploaded_file"
  std::string origin;  // resolved sink location (same contract as site)
  std::uint32_t file = 0;
  std::uint32_t line = 0;
  std::uint64_t queries = 0;     // Z3 calls
  std::uint64_t cache_hits = 0;  // SolverQueryCache / per-call memo hits
  double wall_ms = 0.0;          // Z3 wall time (hits contribute 0)
};

// Heap-graph growth attributed to the fork depth that allocated it.
struct HeapDepthStats {
  std::uint32_t depth = 0;  // fork-frame stack depth at sample time
  std::uint64_t objects = 0;
  std::uint64_t bytes = 0;
};

// One live-path timeline sample (the deadline-poll stride).
struct PathSample {
  std::uint64_t t_us = 0;  // since begin_root
  std::uint64_t live_paths = 0;
  std::uint64_t objects = 0;
  std::uint64_t heap_bytes = 0;
};

// The budget post-mortem: why an incomplete root died.
struct PostMortem {
  std::string reason;  // budget_exhausted | deadline_exceeded | analysis_error
  std::uint64_t peak_paths = 0;
  // "site (kind detail)" of the top-ranked loop/foreach site by
  // cumulative paths; when no loop forked (a conditional-driven
  // explosion like Cimy's if/elseif ladder) the top fork site of any
  // kind, so the field always names the dominating construct. Empty
  // only when the root recorded no fork at all.
  std::string dominant_loop;
  std::vector<ForkSiteStats> top_sites;  // <= 10, ranked
  std::vector<PathSample> live_path_histogram;
};

// Everything attributed for one analysis root.
struct RootProfile {
  std::string root;
  bool incomplete = false;
  std::string reason;  // empty when the root completed
  std::uint64_t peak_paths = 0;
  std::vector<ForkSiteStats> fork_sites;  // ranked by cumulative desc
  std::vector<SolverSiteStats> solver;    // ranked by wall_ms desc
  std::vector<HeapDepthStats> heap_by_depth;  // ascending depth
  std::vector<PathSample> samples;
  std::optional<PostMortem> post_mortem;
};

// The per-scan profile attached to a ScanReport.
struct ExplosionProfile {
  // Peak resident set (VmHWM) at end of scan. Nondeterministic, which
  // is why it lives here and not in the deterministic report stats.
  std::uint64_t peak_rss_bytes = 0;
  std::vector<RootProfile> roots;
};

// Ranks fork_sites / solver / heap_by_depth deterministically (by
// count desc, then source position asc). end_root() calls this; it is
// exposed for tests and for callers that assemble RootProfiles by hand.
void rank_root_profile(RootProfile& root);

// Builds the post-mortem from an already-ranked root profile. Site
// strings are copied as-is, so resolve them first (detector) when a
// human will read the result.
[[nodiscard]] PostMortem build_post_mortem(const RootProfile& root);

// Peak resident set size of this process in bytes (VmHWM from
// /proc/self/status). Returns 0 when unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

// JSON round-trip for the report's "profile" object. to_json emits a
// compact object in the report_io house style; from_json is the strict
// inverse (nullopt on any structural mismatch).
[[nodiscard]] std::string to_json(const ExplosionProfile& profile);
[[nodiscard]] std::optional<ExplosionProfile> from_json(
    const jsonlite::Value& value);

// The recorder. The detector owns one per scan and threads a pointer
// through Budget (interpreter hooks) and smt::Checker (solver hooks).
class PathProfiler {
 public:
  PathProfiler();

  // Root lifecycle. begin_root resets the working state; end_root
  // ranks it and moves it onto the finished list.
  void begin_root(std::string name);
  void end_root(bool incomplete, std::string_view reason);

  // Interpreter hooks. enter_site pushes a fork frame keyed by
  // (kind, file, line); exit_site pops it and attributes the env-count
  // delta: cumulative to this site, cumulative minus nested to self,
  // and the cumulative into the parent frame's nested tally.
  void enter_site(ForkKind kind, std::uint32_t file, std::uint32_t line,
                  std::string_view detail, std::size_t paths_before);
  void exit_site(std::size_t paths_after);

  // Timeline sample on the interpreter's deadline-poll stride. Heap
  // growth since the previous sample is attributed to the current
  // fork depth.
  void sample(std::size_t live_paths, std::size_t objects,
              std::size_t heap_bytes);

  // Solver hook (smt::Checker and the SolverQueryCache hit paths).
  void record_solver(std::string_view sink, std::uint32_t file,
                     std::uint32_t line, double wall_ms, bool cache_hit);

  // Thread-safe copy: finished roots plus the in-progress root (if
  // any), each ranked. Safe to call while a scan is running.
  [[nodiscard]] ExplosionProfile snapshot() const;

  // Moves the finished roots out (end of scan; detector thread only).
  [[nodiscard]] ExplosionProfile take();

 private:
  struct Frame {
    std::size_t site = 0;         // index into state_.fork_sites
    std::size_t paths_before = 0;
    std::uint64_t nested_cumulative = 0;
  };

  struct RootState {
    RootProfile profile;
    std::unordered_map<std::uint64_t, std::size_t> site_index;
    std::unordered_map<std::uint64_t, std::size_t> solver_index;
    std::unordered_map<std::uint32_t, std::size_t> depth_index;
    std::vector<Frame> frames;
    std::uint64_t peak_paths = 0;
    std::uint64_t last_objects = 0;
    std::uint64_t last_bytes = 0;
    bool active = false;
  };

  void note_paths_locked(std::uint64_t live_paths);
  std::size_t site_slot_locked(ForkKind kind, std::uint32_t file,
                               std::uint32_t line, std::string_view detail);
  [[nodiscard]] RootProfile finish_state_locked();

  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point root_epoch_;
  RootState state_;
  std::vector<RootProfile> finished_;
};

}  // namespace uchecker::profile
