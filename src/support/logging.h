// Structured JSON-lines logging for the long-running service pieces
// (scand, ScanService, the watchdog).
//
// Each log call emits exactly one JSON object on one line:
//
//   {"ts": "2026-08-08T12:34:56.789Z", "level": "info",
//    "event": "request_done", "trace_id": "a1b2c3d4e5f60718",
//    "app": "foxypress", "verdict": "vulnerable", "total_ms": 46.2}
//
// Schema (stable; ci/check.sh step 9 validates every line against it):
//  - "ts"       ISO-8601 UTC wall time with millisecond precision. Always
//               present, always first.
//  - "level"    "debug" | "info" | "warn" | "error".
//  - "event"    machine-readable event name (snake_case, no spaces).
//  - "trace_id" the request's trace ID when the event belongs to one
//               (omitted otherwise) — the same ID carried by the scan's
//               report JSON, Chrome-trace spans and metric exemplars, so
//               one grep over the log reconstructs a request end-to-end.
//  - "suppressed" present only on the first line after rate limiting
//               dropped lines for this (level, event) key; counts drops.
//  - any further fields are event-specific key/value pairs.
//
// The logger is thread-safe (one mutex serializes formatting + the sink
// write, so lines never interleave) and cheap when disabled: a call
// below min_level returns after one atomic load, no formatting.
// Rate limiting is per (level, event) key over fixed one-second windows
// so a hot loop cannot flood the sink; suppressed counts are reported,
// never silently dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace uchecker::logging {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Stable lower-case name ("debug", "info", "warn", "error").
[[nodiscard]] std::string_view level_name(Level level);
// Parses a level name (case-insensitive); nullopt-like: returns true and
// sets `out` on success.
[[nodiscard]] bool parse_level(std::string_view name, Level* out);

// One typed key/value pair. Built implicitly at call sites:
//   log.info("request_done", trace_id,
//            {{"app", name}, {"total_ms", 46.2}, {"cached", true}});
class Field {
 public:
  Field(std::string_view key, std::string_view value)
      : key_(key), kind_(Kind::kString), str_(value) {}
  Field(std::string_view key, const char* value)
      : key_(key), kind_(Kind::kString), str_(value) {}
  Field(std::string_view key, const std::string& value)
      : key_(key), kind_(Kind::kString), str_(value) {}
  Field(std::string_view key, bool value)
      : key_(key), kind_(Kind::kBool), bool_(value) {}
  Field(std::string_view key, double value)
      : key_(key), kind_(Kind::kDouble), num_(value) {}
  Field(std::string_view key, std::int64_t value)
      : key_(key), kind_(Kind::kInt), int_(value) {}
  Field(std::string_view key, std::uint64_t value)
      : key_(key), kind_(Kind::kInt), int_(static_cast<std::int64_t>(value)) {}
  Field(std::string_view key, int value)
      : key_(key), kind_(Kind::kInt), int_(value) {}
  Field(std::string_view key, unsigned value)
      : key_(key), kind_(Kind::kInt), int_(value) {}

  // Appends `"key": value` (JSON-escaped) to `out`.
  void append_to(std::string& out) const;

 private:
  enum class Kind { kString, kBool, kDouble, kInt };
  std::string_view key_;
  Kind kind_;
  std::string_view str_;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
};

struct LoggerOptions {
  Level min_level = Level::kInfo;
  // Max emitted lines per second per (level, event) key; 0 = unlimited.
  std::uint32_t rate_limit_per_sec = 0;
};

class Logger {
 public:
  explicit Logger(LoggerOptions options = {});
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  // Replaces the sink. The default sink writes to stderr. The sink is
  // called with the full line (no trailing newline) under the logger
  // mutex, so it needs no locking of its own.
  void set_sink(std::function<void(const std::string&)> sink);
  // Appends to `path`; returns false (and keeps the current sink) if the
  // file cannot be opened.
  [[nodiscard]] bool open_file(const std::string& path);

  void set_min_level(Level level);
  [[nodiscard]] Level min_level() const;

  void log(Level level, std::string_view event, std::string_view trace_id,
           std::initializer_list<Field> fields = {});

  void debug(std::string_view event, std::string_view trace_id = {},
             std::initializer_list<Field> fields = {}) {
    log(Level::kDebug, event, trace_id, fields);
  }
  void info(std::string_view event, std::string_view trace_id = {},
            std::initializer_list<Field> fields = {}) {
    log(Level::kInfo, event, trace_id, fields);
  }
  void warn(std::string_view event, std::string_view trace_id = {},
            std::initializer_list<Field> fields = {}) {
    log(Level::kWarn, event, trace_id, fields);
  }
  void error(std::string_view event, std::string_view trace_id = {},
             std::initializer_list<Field> fields = {}) {
    log(Level::kError, event, trace_id, fields);
  }

  // Totals since construction (emitted excludes rate-limited drops).
  [[nodiscard]] std::uint64_t emitted() const;
  [[nodiscard]] std::uint64_t suppressed() const;

 private:
  struct RateState {
    std::int64_t window_start_ms = 0;
    std::uint32_t in_window = 0;
    std::uint64_t suppressed = 0;  // pending, reported on next emit
  };

  LoggerOptions options_;
  std::atomic<int> min_level_;
  mutable std::mutex mu_;
  std::function<void(const std::string&)> sink_;
  void* file_ = nullptr;  // FILE*, owned; kept opaque so <cstdio> stays out
  std::map<std::string, RateState, std::less<>> rate_;
  std::uint64_t emitted_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace uchecker::logging
