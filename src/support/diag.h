// Diagnostics: structured errors/warnings produced by the lexer, parser,
// and analysis phases. User-input problems are reported as diagnostics
// (never as exceptions crossing module boundaries).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/source.h"

namespace uchecker {

enum class Severity { kNote, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
  // Pipeline phase the diagnostic was reported from ("parse", "interp",
  // ...; same vocabulary as ScanError::phase). Defaulted so existing
  // aggregate initializers stay source-compatible; stamped by the sink
  // from its current phase context.
  std::string phase;
};

// Collects diagnostics for one pipeline run. Cheap to pass by reference
// through the phases; the detector inspects it at the end.
//
// Phase provenance: the detector calls set_phase() as the pipeline moves
// from parsing to analysis, and every diagnostic reported while a phase
// is active is stamped with it — so diagnostics and ScanError agree on
// which phase an error belongs to.
class DiagnosticSink {
 public:
  void report(Severity severity, SourceLoc loc, std::string message) {
    diags_.push_back(Diagnostic{severity, loc, std::move(message), phase_});
    if (severity == Severity::kError) ++error_count_;
  }

  void error(SourceLoc loc, std::string message) {
    report(Severity::kError, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::kWarning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::kNote, loc, std::move(message));
  }

  // Sets the phase stamped onto subsequently reported diagnostics
  // (empty = unattributed).
  void set_phase(std::string phase) { phase_ = std::move(phase); }
  [[nodiscard]] const std::string& phase() const { return phase_; }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  // Appends every diagnostic of `other`, keeping its phase stamps (they
  // were stamped by the producing sink, not this one). Used to fold
  // per-file sinks from parallel parsing into the scan-wide sink in
  // deterministic file order.
  void merge(const DiagnosticSink& other) {
    for (const Diagnostic& d : other.diags_) {
      diags_.push_back(d);
      if (d.severity == Severity::kError) ++error_count_;
    }
  }

  // Error-severity diagnostic counts grouped by phase, in phase-name
  // order. Unattributed diagnostics group under "".
  [[nodiscard]] std::map<std::string, std::size_t> error_counts_by_phase() const;

  // Renders all diagnostics using the manager for location names.
  [[nodiscard]] std::string render(const SourceManager& sm) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
  std::string phase_;
};

}  // namespace uchecker
