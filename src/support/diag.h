// Diagnostics: structured errors/warnings produced by the lexer, parser,
// and analysis phases. User-input problems are reported as diagnostics
// (never as exceptions crossing module boundaries).
#pragma once

#include <string>
#include <vector>

#include "support/source.h"

namespace uchecker {

enum class Severity { kNote, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
};

// Collects diagnostics for one pipeline run. Cheap to pass by reference
// through the phases; the detector inspects it at the end.
class DiagnosticSink {
 public:
  void report(Severity severity, SourceLoc loc, std::string message) {
    diags_.push_back(Diagnostic{severity, loc, std::move(message)});
    if (severity == Severity::kError) ++error_count_;
  }

  void error(SourceLoc loc, std::string message) {
    report(Severity::kError, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::kWarning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::kNote, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  // Renders all diagnostics using the manager for location names.
  [[nodiscard]] std::string render(const SourceManager& sm) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace uchecker
