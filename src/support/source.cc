#include "support/source.h"

#include <algorithm>

#include "support/strutil.h"

namespace uchecker {

SourceFile::SourceFile(FileId id, std::string name, std::string content)
    : id_(id), name_(std::move(name)), content_(std::move(content)) {
  line_offsets_.push_back(0);
  for (std::size_t i = 0; i < content_.size(); ++i) {
    if (content_[i] == '\n') line_offsets_.push_back(i + 1);
  }
}

std::uint32_t SourceFile::line_count() const {
  // The sentinel offset after a trailing '\n' does not start a real line.
  if (!line_offsets_.empty() && line_offsets_.back() == content_.size() &&
      !content_.empty()) {
    return static_cast<std::uint32_t>(line_offsets_.size() - 1);
  }
  return static_cast<std::uint32_t>(line_offsets_.size());
}

std::string_view SourceFile::line(std::uint32_t line_no) const {
  if (line_no == 0 || line_no > line_count()) return {};
  const std::size_t start = line_offsets_[line_no - 1];
  std::size_t end = (line_no < line_offsets_.size()) ? line_offsets_[line_no]
                                                     : content_.size();
  // Trim the trailing newline (and a CR if present).
  while (end > start && (content_[end - 1] == '\n' || content_[end - 1] == '\r')) {
    --end;
  }
  return std::string_view(content_).substr(start, end - start);
}

SourceLoc SourceFile::loc_for_offset(std::size_t offset) const {
  offset = std::min(offset, content_.size());
  // upper_bound gives the first line start strictly beyond `offset`.
  auto it = std::upper_bound(line_offsets_.begin(), line_offsets_.end(), offset);
  const auto line_idx = static_cast<std::uint32_t>(it - line_offsets_.begin());
  const std::size_t line_start = line_offsets_[line_idx - 1];
  return SourceLoc{id_, line_idx, static_cast<std::uint32_t>(offset - line_start + 1)};
}

std::uint32_t SourceFile::loc_count() const {
  std::uint32_t count = 0;
  for (std::uint32_t i = 1; i <= line_count(); ++i) {
    const std::string_view text = strutil::trim(line(i));
    if (text.empty()) continue;
    if (text.starts_with("//") || text.starts_with("#") ||
        text.starts_with("*") || text.starts_with("/*")) {
      continue;
    }
    ++count;
  }
  return count;
}

FileId SourceManager::add_file(std::string name, std::string content) {
  const FileId id{static_cast<std::uint32_t>(files_.size() + 1)};
  files_.emplace_back(id, std::move(name), std::move(content));
  return id;
}

const SourceFile* SourceManager::file(FileId id) const {
  if (!id.valid() || id.value > files_.size()) return nullptr;
  return &files_[id.value - 1];
}

const SourceFile* SourceManager::file_by_name(std::string_view name) const {
  for (const SourceFile& f : files_) {
    if (f.name() == name) return &f;
  }
  return nullptr;
}

std::string SourceManager::describe(SourceLoc loc) const {
  const SourceFile* f = file(loc.file);
  if (f == nullptr) return "<unknown>";
  std::string out = f->name();
  if (loc.line != 0) {
    out += ":" + std::to_string(loc.line);
    if (loc.column != 0) out += ":" + std::to_string(loc.column);
  }
  return out;
}

std::uint64_t SourceManager::total_loc() const {
  std::uint64_t total = 0;
  for (const SourceFile& f : files_) total += f.loc_count();
  return total;
}

}  // namespace uchecker
