#include "support/arena.h"

#include <cstdlib>

namespace uchecker {

Arena::Arena(std::size_t first_block_size)
    : next_block_size_(first_block_size == 0 ? kDefaultBlockSize
                                             : first_block_size),
      first_block_size_(next_block_size_) {}

Arena::~Arena() { free_blocks(); }

Arena::Arena(Arena&& other) noexcept
    : blocks_(std::move(other.blocks_)),
      ptr_(other.ptr_),
      end_(other.end_),
      next_block_size_(other.next_block_size_),
      first_block_size_(other.first_block_size_),
      allocated_(other.allocated_),
      reserved_(other.reserved_) {
  other.blocks_.clear();
  other.ptr_ = other.end_ = nullptr;
  other.allocated_ = other.reserved_ = 0;
  other.next_block_size_ = other.first_block_size_;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    free_blocks();
    blocks_ = std::move(other.blocks_);
    ptr_ = other.ptr_;
    end_ = other.end_;
    next_block_size_ = other.next_block_size_;
    first_block_size_ = other.first_block_size_;
    allocated_ = other.allocated_;
    reserved_ = other.reserved_;
    other.blocks_.clear();
    other.ptr_ = other.end_ = nullptr;
    other.allocated_ = other.reserved_ = 0;
    other.next_block_size_ = other.first_block_size_;
  }
  return *this;
}

void Arena::free_blocks() {
  for (const Block& b : blocks_) std::free(b.data);
  blocks_.clear();
  ptr_ = end_ = nullptr;
}

void Arena::grow(std::size_t min_size) {
  std::size_t size = next_block_size_;
  while (size < min_size) size *= 2;
  Block block;
  block.data = static_cast<char*>(std::malloc(size));
  if (block.data == nullptr) throw std::bad_alloc();
  block.size = size;
  blocks_.push_back(block);
  ptr_ = block.data;
  end_ = block.data + size;
  reserved_ += size;
  if (next_block_size_ < kMaxBlockSize) next_block_size_ *= 2;
}

void* Arena::allocate(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  // Large-object fallback: a dedicated block, spliced *behind* the
  // current bump block so the remaining bump space is not wasted.
  if (size > kMaxBlockSize) {
    Block block;
    block.data = static_cast<char*>(std::malloc(size));
    if (block.data == nullptr) throw std::bad_alloc();
    block.size = size;
    reserved_ += size;
    allocated_ += size;
    if (blocks_.empty()) {
      blocks_.push_back(block);
      // No bump block yet; keep ptr_/end_ null so the next small
      // allocation starts a fresh one.
    } else {
      blocks_.push_back(blocks_.back());
      blocks_[blocks_.size() - 2] = block;
    }
    return block.data;
  }
  char* aligned = reinterpret_cast<char*>(
      (reinterpret_cast<std::uintptr_t>(ptr_) + (align - 1)) & ~(align - 1));
  if (ptr_ == nullptr || aligned + size > end_) {
    grow(size + align);
    aligned = reinterpret_cast<char*>(
        (reinterpret_cast<std::uintptr_t>(ptr_) + (align - 1)) & ~(align - 1));
  }
  ptr_ = aligned + size;
  allocated_ += size;
  return aligned;
}

std::string_view Arena::copy(std::string_view s) {
  if (s.empty()) return {};
  char* data = static_cast<char*>(allocate(s.size(), 1));
  std::memcpy(data, s.data(), s.size());
  return {data, s.size()};
}

void Arena::reset() {
  while (blocks_.size() > 1) {
    std::free(blocks_.back().data);
    reserved_ -= blocks_.back().size;
    blocks_.pop_back();
  }
  allocated_ = 0;
  if (blocks_.empty()) {
    ptr_ = end_ = nullptr;
    next_block_size_ = first_block_size_;
  } else {
    ptr_ = blocks_.front().data;
    end_ = blocks_.front().data + blocks_.front().size;
    next_block_size_ =
        blocks_.front().size < kMaxBlockSize ? blocks_.front().size * 2
                                             : kMaxBlockSize;
  }
}

}  // namespace uchecker
