// Durable, corruption-detecting cache store (the persistence layer of
// the scand service).
//
// Design goal: a torn write, a flipped bit, an out-of-space append or a
// schema change must be *detected* and degrade the cache to a cold
// recompute — it must never be trusted into a wrong verdict. The store
// therefore checksums every record, versions its header, and keeps every
// mutation either atomic (whole-file rewrite via write-to-temp + rename)
// or append-only (a torn appended record is recognized and discarded on
// the next open, and everything before it survives).
//
// Two layers:
//
//  - DurableLog: an append-only record log. File layout:
//        magic "UCDS" | u32 format version | u32 len | schema string
//        repeat: u32 payload length | u64 FNV-1a-64(payload) | payload
//    (all integers little-endian). open() replays records until the
//    first length/checksum violation, truncates the file back to the
//    last intact record (so later appends never land on top of garbage)
//    and reports how many records were dropped. A magic/version/schema
//    mismatch discards the whole file ("cold start").
//  - KvStore: a string -> string map persisted through a DurableLog
//    (payload = u32 key length | key | value; later records win, so
//    put() is a cheap upsert append). compact() rewrites the live map
//    atomically and drops superseded records. Thread-safe.
//
// Fault injection: the store runs FaultInjector::io_checkpoint at the
// points "store.append" (short write / ENOSPC), "store.rename" (torn
// rename) and "store.read" (bit flip), so tests can prove each detection
// path end to end. See support/fault_injector.h.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uchecker::store {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

// FNV-1a 64 over raw bytes — the per-record checksum, and the content
// hash callers build cache keys from (same scheme as the PR5 finding
// fingerprints, so fingerprints and cache keys share one vocabulary).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data,
                                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

// 16 lowercase hex digits.
[[nodiscard]] std::string hex64(std::uint64_t value);

// What open() found on disk. `cold` means no prior state was usable
// (missing file, header mismatch, unreadable) — the caches start empty
// and the file is re-initialized. Corrupt *records* are not cold: the
// intact prefix is kept and only the damaged tail is dropped.
struct OpenStats {
  bool cold = false;
  std::string cold_reason;          // "" unless cold
  std::size_t records_loaded = 0;   // intact records replayed
  std::size_t records_corrupt = 0;  // records dropped by checksum/length
};

class DurableLog {
 public:
  DurableLog() = default;
  ~DurableLog();

  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  // Opens (creating if needed) the log at `path`. `schema` names the
  // record schema of the owning cache *and* the engine version that
  // wrote it: any mismatch — including a corrupt or truncated header —
  // re-initializes the file empty. Intact records are delivered to
  // `replay` in append order. Returns false only when the file cannot
  // be created at all (the store is then disabled, not wrong).
  bool open(const std::string& path, std::string_view schema,
            const std::function<void(std::string_view)>& replay,
            OpenStats& stats);

  // Appends one checksummed record and flushes it to the OS. Returns
  // false on any I/O failure (ENOSPC, closed log); the record is then
  // not (reliably) durable and the caller should count a dropped flush —
  // nothing in-memory is harmed.
  bool append(std::string_view payload);

  // Atomically replaces the log's contents with `records` (write to
  // `path + ".tmp"`, fsync, rename over the original). On failure the
  // original file is untouched and remains the live log.
  bool rewrite(const std::vector<std::string>& records);

  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  bool write_header(int fd) const;
  bool append_record(int fd, std::string_view payload) const;

  int fd_ = -1;
  std::string path_;
  std::string schema_;
};

// Counters a persistent cache exposes (mirrored into telemetry by the
// service). `corrupt` accumulates both open-time record drops and any
// value that later fails to decode.
struct StoreStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t corrupt = 0;
  std::size_t dropped_flushes = 0;  // append failures (e.g. ENOSPC)
  bool cold_start = false;
  std::string cold_reason;
};

class KvStore {
 public:
  KvStore() = default;

  // Opens the backing log and replays it into memory. Per-record
  // corruption and header mismatches surface in stats() — a usable
  // (possibly empty) store always results. Returns false only when the
  // backing file cannot be created; the store then runs purely
  // in-memory (put/get still work, nothing persists).
  bool open(const std::string& path, std::string_view schema);

  // Upsert + durable append. The in-memory map always updates; the
  // return value says whether the append reached the OS (false counts a
  // dropped flush — after a crash the entry is simply recomputed).
  bool put(const std::string& key, const std::string& value);

  [[nodiscard]] std::optional<std::string> get(const std::string& key);
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t size() const;

  // Marks `key`'s current value undecodable (counted corrupt) and
  // removes it so the caller recomputes. Used when a value passes the
  // record checksum but fails semantic decoding.
  void invalidate(const std::string& key);

  // Atomic whole-store rewrite dropping superseded append records.
  bool compact();

  void close();

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] std::map<std::string, std::string> snapshot() const;

 private:
  [[nodiscard]] static std::string encode(std::string_view key,
                                          std::string_view value);

  mutable std::mutex mu_;
  DurableLog log_;
  std::map<std::string, std::string> map_;
  StoreStats stats_;
};

}  // namespace uchecker::store
