// Wall-clock deadlines and cooperative cancellation.
//
// A Deadline bounds one scan in real time, independently of the path- and
// object-count budgets: the interpreter polls it in its hot loop, the SMT
// layer clamps solver timeouts to the remaining time, and the detector
// stops starting new analysis roots once it has expired. Expiration is
// reported (ScanReport::deadline_exceeded), never fatal.
//
// A Deadline may also carry a shared cancellation token (from a
// CancellationSource), so a fleet driver can abort every in-flight scan
// with one store. Cancellation makes the deadline "expired" immediately.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace uchecker {

// One writer-side cancellation flag shared by any number of Deadlines.
// Copying the source shares the flag.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::shared_ptr<const std::atomic<bool>> token() const {
    return flag_;
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Default-constructed deadlines never expire (but still honour an
  // attached cancellation token).
  Deadline() = default;

  [[nodiscard]] static Deadline unlimited() { return Deadline{}; }

  // Expires `budget` from *now* (construction time, not first use).
  [[nodiscard]] static Deadline after(std::chrono::milliseconds budget) {
    Deadline d;
    d.unlimited_ = false;
    d.at_ = Clock::now() + budget;
    return d;
  }

  void attach(std::shared_ptr<const std::atomic<bool>> cancel) {
    cancel_ = std::move(cancel);
  }

  [[nodiscard]] bool is_unlimited() const { return unlimited_; }

  [[nodiscard]] bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool expired() const {
    if (cancelled()) return true;
    return !unlimited_ && Clock::now() >= at_;
  }

  // Milliseconds left, clamped to [0, cap]. Unlimited deadlines report
  // `cap` (callers use this to bound solver timeouts).
  [[nodiscard]] std::uint64_t remaining_ms(
      std::uint64_t cap = UINT64_C(1) << 32) const {
    if (cancelled()) return 0;
    if (unlimited_) return cap;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    if (left.count() <= 0) return 0;
    return std::min<std::uint64_t>(static_cast<std::uint64_t>(left.count()),
                                   cap);
  }

  // The stricter of two deadlines. At most one cancellation token is
  // kept: `a`'s wins if both carry one (in practice only the fleet-level
  // deadline does).
  [[nodiscard]] static Deadline sooner(const Deadline& a, const Deadline& b) {
    Deadline d;
    d.unlimited_ = a.unlimited_ && b.unlimited_;
    if (!d.unlimited_) {
      if (a.unlimited_) {
        d.at_ = b.at_;
      } else if (b.unlimited_) {
        d.at_ = a.at_;
      } else {
        d.at_ = std::min(a.at_, b.at_);
      }
    }
    d.cancel_ = a.cancel_ != nullptr ? a.cancel_ : b.cancel_;
    return d;
  }

 private:
  Clock::time_point at_{};
  bool unlimited_ = true;
  std::shared_ptr<const std::atomic<bool>> cancel_;
};

}  // namespace uchecker
