// Export of telemetry data:
//
//  - to_chrome_trace_json: the span trees, progress samples, solver-call
//    latencies and deadline/budget events of every trace, as Chrome
//    trace-event JSON (the "JSON Array Format" with a traceEvents
//    wrapper object) — loadable in Perfetto / chrome://tracing. Each
//    scan's trace renders as one thread (tid); spans become complete
//    ("X") events, progress samples counter ("C") events, and
//    deadline/budget events instant ("i") events.
//  - metrics_to_json: the metrics registry (counters, gauges,
//    histograms) plus the fleet per-phase latency aggregation
//    (p50/p95/p99 wall time per phase) as one JSON object.
//
// Both exports read traces through ScanTrace::snapshot(), so they are
// safe to call while scans are still running (live traces render with
// their spans still open). Traces begun with a request trace ID carry
// it as a "trace_id" arg on every emitted event.
#pragma once

#include <string>

#include "support/profile.h"
#include "support/telemetry.h"

namespace uchecker::telemetry {

struct ChromeTraceOptions {
  // Zero all timestamps and durations. The output is then deterministic
  // for a given span tree, which is what the golden-format test pins.
  bool zero_times = false;
};

[[nodiscard]] std::string to_chrome_trace_json(
    const Telemetry& telemetry, const ChromeTraceOptions& options = {});

// As above, plus the engine-introspection profile: each profiled root
// gets its own synthetic track carrying fork-site counter ("C") events
// (paths_spawned / self_paths / visits per source fork site, ranked
// order preserved) and the live-path timeline as counter events. Under
// zero_times the profile events are deterministic for a given profile.
[[nodiscard]] std::string to_chrome_trace_json(
    const Telemetry& telemetry, const profile::ExplosionProfile& profile,
    const ChromeTraceOptions& options = {});

// {
//   "counters": { "name": N, ... },
//   "gauges": { "name": X, ... },
//   "exemplars": { "name": "trace_id", ... },
//   "histograms": { "name": { "count": N, "sum": X, "min": X, "max": X,
//                             "buckets": [ { "le": X|"inf", "count": N } ] } },
//   "phases": [ { "phase": "...", "count": N, "total_ms": X,
//                 "p50_ms": X, "p95_ms": X, "p99_ms": X, "max_ms": X } ]
// }
// Histogram buckets are cumulative ("le" convention, matching the
// Prometheus exposition in prom_export.h): each bucket counts samples
// <= its bound and the final "inf" bucket equals "count".
[[nodiscard]] std::string metrics_to_json(const Telemetry& telemetry);

}  // namespace uchecker::telemetry
