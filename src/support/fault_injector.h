// Deterministic fault injection for the scan pipeline.
//
// The pipeline phases call FaultInjector::checkpoint("parse" | "locality" |
// "interp" | "translate" | "solve" | "solve-attempt") at their entry
// points. By default every checkpoint is a no-op behind a single relaxed
// atomic load; tests arm a named point to throw (InjectedFault) or stall
// (sleep) there, proving that each containment path in the detector and
// the fleet driver actually fires. Compiled in unconditionally — the
// disarmed cost is one branch, and keeping it in release builds means the
// tested binary is the shipped binary.
//
// The injector is process-global and thread-safe; arming is serialized
// with firing, so "fire at most N times" is exact even when several scan
// workers reach the point concurrently.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace uchecker {

// An error that a retry may plausibly clear (spurious resource blips,
// lost races). Fleet drivers retry an app once when its scan failed with
// only transient errors; everything else is permanent.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by an armed kThrow/kThrowTransient checkpoint. Carries the point
// name so containment code can attribute the failure to the exact phase.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(std::string point, bool transient)
      : std::runtime_error("injected fault at " + point),
        point_(std::move(point)),
        transient_(transient) {}

  [[nodiscard]] const std::string& point() const { return point_; }
  [[nodiscard]] bool transient() const { return transient_; }

 private:
  std::string point_;
  bool transient_;
};

class FaultInjector {
 public:
  enum class Action : std::uint8_t {
    kThrow,           // throw InjectedFault (permanent)
    kThrowTransient,  // throw InjectedFault marked transient
    kStall,           // sleep for the configured duration, then continue
    // Disk-I/O fault classes, applied cooperatively by the durable store
    // (support/store) at its io_checkpoint()s. Regular checkpoint() calls
    // ignore these — they only make sense where the caller can simulate
    // the hardware behaviour:
    kShortWrite,  // persist only a prefix of the record (power cut mid-write)
    kTornRename,  // drop the atomic rename (crash between write and rename)
    kEnospc,      // the write fails cleanly with "no space left on device"
    kBitFlip,     // flip one bit of the buffer just read (media corruption)
  };

  static FaultInjector& instance();

  // Arms `point` to perform `action` the next `max_hits` times it is
  // reached (-1 = until disarmed). Re-arming replaces the previous
  // configuration; the fired-count is preserved across re-arms.
  void arm(std::string_view point, Action action,
           std::chrono::milliseconds stall = std::chrono::milliseconds{0},
           int max_hits = -1);
  void disarm(std::string_view point);
  void disarm_all();

  // How many times `point` has fired since the last disarm_all().
  [[nodiscard]] std::size_t hits(std::string_view point) const;

  // Instrumentation hook. No-op (one relaxed load) unless a point is
  // armed anywhere in the process. Disk-I/O actions armed at `point` are
  // ignored here (they need caller cooperation; see io_checkpoint).
  static void checkpoint(std::string_view point) {
    FaultInjector& fi = instance();
    if (fi.armed_points_.load(std::memory_order_relaxed) == 0) return;
    fi.fire(point, /*io=*/false);
  }

  // Disk-I/O instrumentation hook. Returns the armed I/O action the
  // caller must now simulate (short write, torn rename, ...), or nullopt
  // when nothing (relevant) is armed. kThrow/kThrowTransient/kStall
  // armed at the same point still throw/sleep here, so every existing
  // arming mode also works on store code paths.
  static std::optional<Action> io_checkpoint(std::string_view point) {
    FaultInjector& fi = instance();
    if (fi.armed_points_.load(std::memory_order_relaxed) == 0) {
      return std::nullopt;
    }
    return fi.fire(point, /*io=*/true);
  }

 private:
  FaultInjector() = default;
  std::optional<Action> fire(std::string_view point, bool io);

  std::atomic<int> armed_points_{0};
  struct State;  // mutex + point table (keeps <mutex>/<map> out of the hot path header)
  State& state();
};

}  // namespace uchecker
