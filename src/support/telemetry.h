// Pipeline telemetry: phase-scoped tracing and a metrics registry.
//
// Three layers, all optional at every call site:
//
//  - MetricsRegistry: thread-safe named counters, gauges and fixed-bucket
//    histograms, shared by every scan attached to one Telemetry.
//  - ScanTrace: the per-scan record — a span tree with monotonic
//    timestamps, solver-call latency samples (attempts, escalations),
//    interpreter progress samples (live paths, heap-graph objects,
//    bytes) and deadline/budget events. One trace per Detector::scan;
//    written by that scan's thread only.
//  - Telemetry: the handle threaded through ScanOptions. Owns the
//    registry and all traces, hands out per-scan traces thread-safely,
//    and aggregates completed traces into fleet-level per-phase latency
//    percentiles.
//
// Overhead contract: everything is driven through nullable pointers.
// With no Telemetry attached (the default), SpanScope construction and
// destruction, progress sampling and event recording each reduce to one
// branch on a null pointer — no allocation, no clock read, no lock
// (bench_micro's telemetry-overhead case pins this down). Export lives
// in trace_export.h so this header stays cheap to include.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace uchecker::telemetry {

class FlightRecorder;

// ---------------------------------------------------------------------------
// Metrics

// Monotonically increasing integer metric. Lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins floating-point metric. Lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. A sample lands in the first bucket whose upper
// bound is >= the sample (inclusive upper bounds, Prometheus "le"
// convention); samples above the last bound land in the implicit
// overflow bucket. Thread-safe.
class Histogram {
 public:
  // `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;  // 0 when empty
  [[nodiscard]] double max() const;  // 0 when empty
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket counts; size bounds().size() + 1, last entry = overflow.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  // Cumulative per-bucket counts (Prometheus "le" convention): entry i
  // counts samples <= bounds()[i]; the last entry is the implicit +Inf
  // bucket and always equals count(). Same size as bucket_counts().
  // Both the metrics JSON export and the Prometheus exposition render
  // from this, so boundary-exact samples can never disagree between the
  // two surfaces.
  [[nodiscard]] std::vector<std::uint64_t> cumulative_counts() const;
  // Quantile estimate (q in [0,1]) by linear interpolation inside the
  // bucket containing the target rank. 0 when empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Thread-safe registry of named metrics. Returned references stay valid
// for the registry's lifetime (metrics are heap-allocated and never
// removed), so hot paths can cache them and skip the map lookup.
class MetricsRegistry {
 public:
  // Millisecond-scale latency buckets (0.1ms .. 60s).
  [[nodiscard]] static std::vector<double> default_latency_buckets_ms();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `bounds` is used only when the histogram is first created.
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  // Snapshots for export, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  // Trace-ID exemplars: the most recent request that touched a metric,
  // rendered as an OpenMetrics exemplar by the Prometheus exposition so
  // a scraped series links back to a concrete request. Last write wins.
  void set_exemplar(std::string_view metric, std::string_view trace_id);
  [[nodiscard]] std::map<std::string, std::string> exemplars() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> exemplars_;
};

// ---------------------------------------------------------------------------
// Per-scan trace

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = UINT32_MAX;

// One completed (or still-open) interval. `name` is the phase ("scan",
// "parse", "locality", "interp", "translate", "solve", ...); `detail`
// carries the file, analysis root or sink it applies to.
struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  std::string detail;
  std::uint64_t start_us = 0;  // monotonic, relative to the Telemetry epoch
  std::uint64_t dur_us = 0;
  bool open = true;
};

// Interpreter hot-loop progress sample.
struct ProgressSample {
  std::uint64_t t_us = 0;
  std::uint64_t live_paths = 0;
  std::uint64_t objects = 0;     // heap-graph objects
  std::uint64_t heap_bytes = 0;  // heap-graph accounted bytes
};

// One smt::Checker::check call.
struct SolverCallSample {
  std::uint64_t t_us = 0;
  std::uint64_t dur_us = 0;
  unsigned attempts = 1;       // 1 = clean first solve
  unsigned escalations = 0;    // retries with a doubled timeout
  bool deadline_exceeded = false;
  std::string result;          // "sat" | "unsat" | "unknown"
};

// Deadline/budget (or other point-in-time) event.
struct TraceEvent {
  std::uint64_t t_us = 0;
  std::string name;    // e.g. "deadline_exceeded", "budget_exhausted"
  std::string detail;
};

// Immutable copy of one trace's state, safe to render while the scan is
// still running. trace_id is empty for traces begun without one.
struct TraceSnapshot {
  std::string name;
  std::string trace_id;
  std::uint32_t tid = 0;
  std::vector<Span> spans;
  std::vector<ProgressSample> progress;
  std::vector<SolverCallSample> solver_calls;
  std::vector<TraceEvent> events;
};

// The record of one scan. Written by the single thread running that
// scan; mutators are serialized by an internal mutex so exporters on
// other threads can take a consistent snapshot() mid-scan. The const-ref
// accessors (spans() etc.) bypass that mutex and are only safe after the
// scan completes — live readers must go through snapshot().
class ScanTrace {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  // The request trace ID this scan belongs to (empty when none was
  // supplied to begin_scan). Stamped into exported spans and the report.
  [[nodiscard]] const std::string& trace_id() const { return trace_id_; }
  // Chrome trace "tid" used on export; unique per trace within a Telemetry.
  [[nodiscard]] std::uint32_t tid() const { return tid_; }

  // Mirrors phase transitions, progress samples, solver calls and events
  // into `recorder` (a per-worker flight-recorder ring) in addition to
  // recording them here. Null detaches. Set before the scan starts.
  void set_flight_recorder(FlightRecorder* recorder);

  // Opens a span as a child of the innermost still-open span.
  SpanId begin_span(std::string_view name, std::string_view detail = {});
  // Closes `id` (and, defensively, any still-open descendants of it).
  void end_span(SpanId id);

  void sample_progress(std::uint64_t live_paths, std::uint64_t objects,
                       std::uint64_t heap_bytes);
  void record_event(std::string_view name, std::string_view detail = {});
  void record_solver_call(std::uint64_t dur_us, unsigned attempts,
                          unsigned escalations, bool deadline_exceeded,
                          std::string_view result);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<ProgressSample>& progress() const {
    return progress_;
  }
  [[nodiscard]] const std::vector<SolverCallSample>& solver_calls() const {
    return solver_calls_;
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  // Consistent copy under the trace mutex; safe while the scan runs.
  [[nodiscard]] TraceSnapshot snapshot() const;

  [[nodiscard]] std::uint64_t now_us() const;

 private:
  friend class Telemetry;
  ScanTrace(std::string name, std::string trace_id,
            std::chrono::steady_clock::time_point epoch, std::uint32_t tid)
      : name_(std::move(name)),
        trace_id_(std::move(trace_id)),
        epoch_(epoch),
        tid_(tid) {}

  // Progress samples are decimated once kMaxProgressSamples is reached
  // (every other sample dropped, stride doubled), so a long scan's trace
  // stays bounded no matter how hot the loop is.
  static constexpr std::size_t kMaxProgressSamples = 4096;

  std::string name_;
  std::string trace_id_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint32_t tid_ = 0;
  FlightRecorder* flight_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::vector<SpanId> open_stack_;
  std::vector<ProgressSample> progress_;
  std::uint64_t progress_stride_ = 1;
  std::uint64_t progress_skip_ = 0;
  std::vector<SolverCallSample> solver_calls_;
  std::vector<TraceEvent> events_;
};

// ---------------------------------------------------------------------------
// Telemetry handle

// Fleet-level latency aggregate for one phase (span name), computed over
// every completed span with that name across all traces.
struct PhaseStats {
  std::string phase;
  std::size_t count = 0;
  double total_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class Telemetry {
 public:
  Telemetry() : epoch_(std::chrono::steady_clock::now()) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  // Creates the trace for one scan. Thread-safe; the returned reference
  // stays valid for the Telemetry's lifetime. All traces share this
  // Telemetry's epoch, so concurrent scans line up on one timeline.
  // `trace_id` (optional) correlates the trace with the request that
  // caused it; it is stamped into exported spans and samples.
  ScanTrace& begin_scan(std::string name, std::string trace_id = {});

  // Snapshot of all trace handles (in begin_scan order). Traces still
  // being written by a live scan may grow after the snapshot; read live
  // traces via ScanTrace::snapshot().
  [[nodiscard]] std::vector<const ScanTrace*> traces() const;

  // Groups completed spans by name across every trace and reports
  // p50/p95/p99/max wall time per phase (exact, from sorted durations).
  // Pipeline phases come first in pipeline order, then others by name.
  [[nodiscard]] std::vector<PhaseStats> fleet_phase_stats() const;

  // Structured progress lines (one JSON object per line). emit_progress
  // is thread-safe and a no-op until a sink is installed.
  void set_progress_sink(std::function<void(const std::string&)> sink);
  void emit_progress(const std::string& json_line);

  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  MetricsRegistry metrics_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ScanTrace>> traces_;
  std::mutex sink_mu_;
  std::function<void(const std::string&)> progress_sink_;
};

// ---------------------------------------------------------------------------
// RAII span

// Opens a span on construction and closes it on destruction. A null
// trace makes both operations a single pointer test — this is the
// "telemetry unattached" fast path.
class SpanScope {
 public:
  SpanScope(ScanTrace* trace, std::string_view name,
            std::string_view detail = {})
      : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->begin_span(name, detail);
  }
  ~SpanScope() {
    if (trace_ != nullptr) trace_->end_span(id_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  [[nodiscard]] SpanId id() const { return id_; }

 private:
  ScanTrace* trace_;
  SpanId id_ = kNoSpan;
};

}  // namespace uchecker::telemetry
