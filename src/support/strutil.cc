#include "support/strutil.h"

#include <cctype>

namespace uchecker::strutil {
namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f';
}

char lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = lower(c);
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

bool starts_with_i(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

bool ends_with_i(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         iequals(s.substr(s.size() - suffix.size()), suffix);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  bool negative = false;
  if (s.front() == '+' || s.front() == '-') {
    negative = s.front() == '-';
    s.remove_prefix(1);
    if (s.empty()) return std::nullopt;
  }
  std::int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return negative ? -value : value;
}

std::int64_t php_intval(std::string_view s) {
  s = trim(s);
  std::size_t i = 0;
  bool negative = false;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
    negative = s[i] == '-';
    ++i;
  }
  std::int64_t value = 0;
  bool any = false;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    value = value * 10 + (s[i] - '0');
    any = true;
  }
  if (!any) return 0;
  return negative ? -value : value;
}

std::string_view file_extension(std::string_view path) {
  const std::string_view base = path_basename(path);
  const std::size_t dot = base.rfind('.');
  if (dot == std::string_view::npos || dot + 1 == base.size()) return {};
  return base.substr(dot + 1);
}

std::string_view path_basename(std::string_view path) {
  // PHP basename() also treats a trailing slash as removable.
  while (!path.empty() && (path.back() == '/' || path.back() == '\\')) {
    path.remove_suffix(1);
  }
  const std::size_t slash = path.find_last_of("/\\");
  if (slash == std::string_view::npos) return path;
  return path.substr(slash + 1);
}

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace uchecker::strutil
