#include "support/logging.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>

#include <chrono>

#include "support/strutil.h"

namespace uchecker::logging {

namespace {

// ISO-8601 UTC with millisecond precision: 2026-08-08T12:34:56.789Z
std::string format_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
  }
  return "info";
}

bool parse_level(std::string_view name, Level* out) {
  const std::string lower = strutil::to_lower(name);
  if (lower == "debug") { *out = Level::kDebug; return true; }
  if (lower == "info") { *out = Level::kInfo; return true; }
  if (lower == "warn" || lower == "warning") { *out = Level::kWarn; return true; }
  if (lower == "error") { *out = Level::kError; return true; }
  return false;
}

void Field::append_to(std::string& out) const {
  out += strutil::quote(key_);
  out += ": ";
  switch (kind_) {
    case Kind::kString:
      out += strutil::quote(str_);
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kDouble:
      append_number(out, num_);
      break;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
      out += buf;
      break;
    }
  }
}

Logger::Logger(LoggerOptions options)
    : options_(options), min_level_(static_cast<int>(options.min_level)) {}

Logger::~Logger() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void Logger::set_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
  sink_ = std::move(sink);
}

bool Logger::open_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
  file_ = f;
  sink_ = [this](const std::string& line) {
    auto* fp = static_cast<std::FILE*>(file_);
    std::fwrite(line.data(), 1, line.size(), fp);
    std::fputc('\n', fp);
    std::fflush(fp);
  };
  return true;
}

void Logger::set_min_level(Level level) {
  min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level Logger::min_level() const {
  return static_cast<Level>(min_level_.load(std::memory_order_relaxed));
}

void Logger::log(Level level, std::string_view event,
                 std::string_view trace_id,
                 std::initializer_list<Field> fields) {
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return;
  }

  std::lock_guard<std::mutex> lock(mu_);

  std::uint64_t report_suppressed = 0;
  if (options_.rate_limit_per_sec > 0) {
    std::string key;
    key.reserve(event.size() + 8);
    key += level_name(level);
    key += '/';
    key += event;
    auto it = rate_.find(key);
    if (it == rate_.end()) it = rate_.emplace(std::move(key), RateState{}).first;
    RateState& rs = it->second;
    const std::int64_t now_ms = steady_ms();
    if (now_ms - rs.window_start_ms >= 1000) {
      rs.window_start_ms = now_ms;
      rs.in_window = 0;
    }
    if (rs.in_window >= options_.rate_limit_per_sec) {
      ++rs.suppressed;
      ++suppressed_;
      return;
    }
    ++rs.in_window;
    report_suppressed = rs.suppressed;
    rs.suppressed = 0;
  }

  std::string line;
  line.reserve(160);
  line += "{\"ts\": \"";
  line += format_timestamp();
  line += "\", \"level\": \"";
  line += level_name(level);
  line += "\", \"event\": ";
  line += strutil::quote(event);
  if (!trace_id.empty()) {
    line += ", \"trace_id\": ";
    line += strutil::quote(trace_id);
  }
  if (report_suppressed > 0) {
    line += ", \"suppressed\": ";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, report_suppressed);
    line += buf;
  }
  for (const Field& f : fields) {
    line += ", ";
    f.append_to(line);
  }
  line += '}';

  ++emitted_;
  if (sink_) {
    sink_(line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
  }
}

std::uint64_t Logger::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

std::uint64_t Logger::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

}  // namespace uchecker::logging
