#include "support/prom_export.h"

#include <cinttypes>
#include <cstdio>

#include <map>

#include "support/telemetry.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace uchecker::telemetry {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_exemplar(std::string& out, const std::string& trace_id) {
  if (trace_id.empty()) return;
  out += " # {trace_id=\"";
  out += trace_id;
  out += "\"} 1";
}

// Resident set size in bytes from /proc/self/statm; 0 when unavailable.
std::uint64_t resident_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long rss_pages = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::uint64_t>(rss_pages) *
         static_cast<std::uint64_t>(page);
#else
  return 0;
#endif
}

}  // namespace

std::string prom_sanitize_name(std::string_view name) {
  std::string out = "uchecker_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_prometheus_text(const Telemetry& telemetry,
                               const PromOptions& options) {
  const MetricsRegistry& reg = telemetry.metrics();
  const auto exemplars = reg.exemplars();
  const auto exemplar_for = [&](const std::string& name) -> std::string {
    const auto it = exemplars.find(name);
    return it == exemplars.end() ? std::string() : it->second;
  };

  std::string out;
  out.reserve(4096);

  for (const auto& [name, value] : reg.counters()) {
    const std::string prom = prom_sanitize_name(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    append_u64(out, value);
    append_exemplar(out, exemplar_for(name));
    out += '\n';
  }

  for (const auto& [name, value] : reg.gauges()) {
    const std::string prom = prom_sanitize_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    append_double(out, value);
    out += '\n';
  }

  for (const auto& [name, hist] : reg.histograms()) {
    const std::string prom = prom_sanitize_name(name);
    out += "# TYPE " + prom + " histogram\n";
    const std::vector<double>& bounds = hist->bounds();
    const std::vector<std::uint64_t> cumulative = hist->cumulative_counts();
    const std::string exemplar = exemplar_for(name);
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out += prom + "_bucket{le=\"";
      append_double(out, bounds[i]);
      out += "\"} ";
      append_u64(out, cumulative[i]);
      out += '\n';
    }
    out += prom + "_bucket{le=\"+Inf\"} ";
    append_u64(out, cumulative.back());
    append_exemplar(out, exemplar);
    out += '\n';
    out += prom + "_sum ";
    append_double(out, hist->sum());
    out += '\n';
    out += prom + "_count ";
    append_u64(out, hist->count());
    out += '\n';
  }

  if (options.include_process_metrics) {
    if (!options.engine_version.empty()) {
      out += "# TYPE uchecker_engine_info gauge\n";
      out += "uchecker_engine_info{version=\"" + options.engine_version +
             "\"} 1\n";
    }
    if (options.process_start != std::chrono::steady_clock::time_point{}) {
      const double uptime =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        options.process_start)
              .count();
      out += "# TYPE uchecker_process_uptime_seconds gauge\n";
      out += "uchecker_process_uptime_seconds ";
      append_double(out, uptime);
      out += '\n';
    }
    if (const std::uint64_t rss = resident_bytes(); rss > 0) {
      out += "# TYPE uchecker_process_resident_memory_bytes gauge\n";
      out += "uchecker_process_resident_memory_bytes ";
      append_u64(out, rss);
      out += '\n';
    }
  }

  return out;
}

}  // namespace uchecker::telemetry
