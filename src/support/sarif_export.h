// SARIF 2.1.0 export (OASIS Static Analysis Results Interchange Format).
//
// A deliberately small slice of the spec — runs / tool.driver.rules /
// results with locations, codeFlows/threadFlows (taint provenance) and
// partialFingerprints (cross-scan dedup) — which is the slice GitHub
// code scanning and most SARIF viewers consume. This layer is generic:
// it knows nothing about scans or findings. The mapping from a
// ScanReport lives in core/detector/report_io (to_sarif).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uchecker::sarif {

// One physical location: artifact URI + 1-based line. line 0 means
// "unknown" and suppresses the region object.
struct Location {
  std::string uri;
  std::uint32_t line = 0;
  std::string message;  // optional per-location message (threadFlow steps)
};

// One codeFlow: a single threadFlow whose locations walk source → sink.
struct CodeFlow {
  std::vector<Location> locations;
};

struct Result {
  std::string rule_id;
  std::string level = "error";  // "none" | "note" | "warning" | "error"
  std::string message;
  Location location;            // primary (sink site)
  std::vector<CodeFlow> code_flows;
  // partialFingerprints: stable name → value pairs (emitted in order).
  std::vector<std::pair<std::string, std::string>> fingerprints;
};

struct Rule {
  std::string id;
  std::string name;         // PascalCase display name
  std::string description;  // shortDescription.text
};

struct Tool {
  std::string name;
  std::string version;
  std::string information_uri;
};

// One sarif-log with a single run (all this exporter ever emits).
struct Log {
  Tool tool;
  std::vector<Rule> rules;
  std::vector<Result> results;
};

// Serializes `log` as a SARIF 2.1.0 JSON document (single line, stable
// key order — suitable for golden-file tests).
[[nodiscard]] std::string to_json(const Log& log);

// Structural validator for SARIF produced by this exporter (and used by
// CI to gate emitted files): parses `text` with jsonlite and checks the
// spine — version "2.1.0", non-empty runs, tool.driver.name, every
// result's ruleId declared in the driver's rules, message.text present,
// locations carrying artifactLocation.uri + 1-based region.startLine,
// codeFlows/threadFlows well-formed, partialFingerprints all strings.
// On failure returns false and, when `error` is non-null, says which
// constraint broke.
[[nodiscard]] bool structurally_valid(std::string_view text,
                                      std::string* error = nullptr);

}  // namespace uchecker::sarif
