#include "support/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "support/strutil.h"

namespace uchecker::telemetry {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string_view flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kPhaseBegin: return "phase_begin";
    case FlightKind::kPhaseEnd: return "phase_end";
    case FlightKind::kProgress: return "progress";
    case FlightKind::kSolverCall: return "solver_call";
    case FlightKind::kEvent: return "event";
    case FlightKind::kQueue: return "queue";
  }
  return "event";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_count_(round_up_pow2(capacity)),
      mask_(slots_count_ - 1),
      slots_(new Slot[slots_count_]),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t FlightRecorder::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void FlightRecorder::record(FlightKind kind, std::string_view detail,
                            std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t index = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index & mask_];
  // Mark the slot mid-write; readers seeing an odd seq skip it.
  slot.seq.store(2 * index + 1, std::memory_order_release);
  slot.t_us.store(now_us(), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  const std::size_t n = std::min(detail.size(), kDetailBytes);
  for (std::size_t i = 0; i < n; ++i) {
    slot.detail[i].store(detail[i], std::memory_order_relaxed);
  }
  slot.detail_len.store(static_cast<std::uint8_t>(n),
                        std::memory_order_relaxed);
  // Publish: even seq encodes the event index so readers can order and
  // verify the copy they made.
  slot.seq.store(2 * index + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(slots_count_);
  for (std::size_t s = 0; s < slots_count_; ++s) {
    const Slot& slot = slots_[s];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0 || (seq & 1) != 0) continue;  // empty or mid-write
    FlightEvent ev;
    ev.index = seq / 2 - 1;
    ev.t_us = slot.t_us.load(std::memory_order_relaxed);
    ev.a = slot.a.load(std::memory_order_relaxed);
    ev.b = slot.b.load(std::memory_order_relaxed);
    ev.kind = static_cast<FlightKind>(slot.kind.load(std::memory_order_relaxed));
    const std::size_t n =
        std::min<std::size_t>(slot.detail_len.load(std::memory_order_relaxed),
                              kDetailBytes);
    ev.detail.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      ev.detail[i] = slot.detail[i].load(std::memory_order_relaxed);
    }
    // Re-check: if a writer claimed the slot during the copy, the copy
    // may be torn — drop it.
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    out.push_back(std::move(ev));
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.index < y.index;
            });
  return out;
}

namespace {

// Innermost phase begun but never ended in the visible window.
std::vector<std::string_view> open_phases(
    const std::vector<FlightEvent>& events) {
  std::vector<std::string_view> phase_stack;
  for (const FlightEvent& ev : events) {
    switch (ev.kind) {
      case FlightKind::kPhaseBegin:
        phase_stack.push_back(ev.detail);
        break;
      case FlightKind::kPhaseEnd:
        // Pop through to the matching begin (defensive against begins
        // that scrolled out of the ring).
        while (!phase_stack.empty()) {
          const bool match = phase_stack.back() == ev.detail;
          phase_stack.pop_back();
          if (match) break;
        }
        break;
      default:
        break;
    }
  }
  return phase_stack;
}

}  // namespace

std::string FlightRecorder::wedged_phase() const {
  const std::vector<FlightEvent> events = snapshot();
  const std::vector<std::string_view> stack = open_phases(events);
  return stack.empty() ? std::string() : std::string(stack.back());
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightEvent> events = snapshot();
  const std::uint64_t total = total_recorded();
  const std::uint64_t dropped =
      total > slots_count_ ? total - slots_count_ : 0;

  const std::vector<std::string_view> phase_stack = open_phases(events);
  const FlightEvent* last_progress = nullptr;
  for (const FlightEvent& ev : events) {
    if (ev.kind == FlightKind::kProgress) last_progress = &ev;
  }

  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"total_recorded\": ";
  append_u64(out, total);
  out += ", \"dropped\": ";
  append_u64(out, dropped);
  out += ", \"wedged_phase\": ";
  if (phase_stack.empty()) {
    out += "null";
  } else {
    out += strutil::quote(phase_stack.back());
  }
  out += ", \"last_progress\": ";
  if (last_progress == nullptr) {
    out += "null";
  } else {
    out += "{\"t_us\": ";
    append_u64(out, last_progress->t_us);
    out += ", \"live_paths\": ";
    append_u64(out, last_progress->a);
    out += ", \"objects\": ";
    append_u64(out, last_progress->b);
    out += '}';
  }
  out += ", \"events\": [";
  bool first = true;
  for (const FlightEvent& ev : events) {
    if (!first) out += ", ";
    first = false;
    out += "{\"t_us\": ";
    append_u64(out, ev.t_us);
    out += ", \"kind\": ";
    out += strutil::quote(flight_kind_name(ev.kind));
    out += ", \"detail\": ";
    out += strutil::quote(ev.detail);
    out += ", \"a\": ";
    append_u64(out, ev.a);
    out += ", \"b\": ";
    append_u64(out, ev.b);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace uchecker::telemetry
