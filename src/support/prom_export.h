// Prometheus text exposition (format version 0.0.4) for a
// MetricsRegistry, served by scand's `metrics` protocol command so the
// daemon can be scraped.
//
// Mapping:
//  - metric names are sanitized ("scand.request_ms" ->
//    "uchecker_scand_request_ms"); counters additionally get the
//    conventional `_total` suffix.
//  - histograms emit cumulative `_bucket{le="..."}` series (Prometheus
//    le convention: each bucket counts samples <= its bound, the last
//    is le="+Inf" and equals `_count`) plus `_sum` and `_count`. The
//    same cumulative counts back the JSON export
//    (Histogram::cumulative_counts), so the two surfaces can never
//    disagree on boundary-exact samples again.
//  - process metadata: uchecker_engine_info{version="..."} 1,
//    uchecker_process_uptime_seconds, and (Linux)
//    uchecker_process_resident_memory_bytes from /proc/self/statm.
//  - when the registry carries a trace-ID exemplar for a metric, the
//    sample line gets an OpenMetrics-style exemplar suffix:
//      uchecker_scan_count_total 44 # {trace_id="a1b2..."} 1
//    so a scrape links straight back to a concrete request.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

namespace uchecker::telemetry {

class Telemetry;

struct PromOptions {
  // Rendered into uchecker_engine_info{version="..."}.
  std::string engine_version;
  // Basis for uchecker_process_uptime_seconds; default-constructed
  // (epoch) disables the uptime series.
  std::chrono::steady_clock::time_point process_start{};
  bool include_process_metrics = true;
};

// Renders every counter, gauge and histogram in `telemetry`'s registry.
// Deterministic: series are emitted in sorted name order.
[[nodiscard]] std::string to_prometheus_text(const Telemetry& telemetry,
                                             const PromOptions& options = {});

// Sanitizes a registry metric name into a Prometheus metric name:
// prefixes "uchecker_", maps every character outside [a-zA-Z0-9_] to '_'.
[[nodiscard]] std::string prom_sanitize_name(std::string_view name);

}  // namespace uchecker::telemetry
