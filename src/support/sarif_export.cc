#include "support/sarif_export.h"

#include "support/jsonlite.h"
#include "support/strutil.h"

namespace uchecker::sarif {
namespace {

using strutil::quote;

std::string location_json(const Location& loc) {
  std::string out = "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ";
  out += quote(loc.uri);
  out += "}";
  if (loc.line > 0) {
    out += ", \"region\": {\"startLine\": " + std::to_string(loc.line) + "}";
  }
  out += "}";
  if (!loc.message.empty()) {
    out += ", \"message\": {\"text\": " + quote(loc.message) + "}";
  }
  out += "}";
  return out;
}

std::string result_json(const Result& r) {
  std::string out = "{\"ruleId\": " + quote(r.rule_id);
  out += ", \"level\": " + quote(r.level);
  out += ", \"message\": {\"text\": " + quote(r.message) + "}";
  out += ", \"locations\": [" + location_json(r.location) + "]";
  if (!r.code_flows.empty()) {
    out += ", \"codeFlows\": [";
    for (std::size_t i = 0; i < r.code_flows.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"threadFlows\": [{\"locations\": [";
      const CodeFlow& flow = r.code_flows[i];
      for (std::size_t j = 0; j < flow.locations.size(); ++j) {
        if (j != 0) out += ", ";
        out += "{\"location\": " + location_json(flow.locations[j]) + "}";
      }
      out += "]}]}";
    }
    out += "]";
  }
  if (!r.fingerprints.empty()) {
    out += ", \"partialFingerprints\": {";
    for (std::size_t i = 0; i < r.fingerprints.size(); ++i) {
      if (i != 0) out += ", ";
      out += quote(r.fingerprints[i].first) + ": " +
             quote(r.fingerprints[i].second);
    }
    out += "}";
  }
  out += "}";
  return out;
}

// --- validator -------------------------------------------------------

// Appends `message` to *error (when non-null) and returns false — the
// single exit path of every structural check below.
bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool check_location(const jsonlite::Value& loc, std::string* error,
                    const char* what) {
  const jsonlite::Value* phys = loc.find("physicalLocation");
  if (phys == nullptr || !phys->is_object()) {
    return fail(error, std::string(what) + ": missing physicalLocation");
  }
  const jsonlite::Value* artifact = phys->find("artifactLocation");
  const jsonlite::Value* uri =
      artifact != nullptr ? artifact->find("uri") : nullptr;
  if (uri == nullptr || !uri->is_string()) {
    return fail(error,
                std::string(what) + ": missing artifactLocation.uri string");
  }
  if (const jsonlite::Value* region = phys->find("region")) {
    const jsonlite::Value* start = region->find("startLine");
    if (start == nullptr || !start->is_number() || start->number() < 1) {
      return fail(error,
                  std::string(what) + ": region.startLine must be >= 1");
    }
  }
  return true;
}

bool known_level(const std::string& level) {
  return level == "none" || level == "note" || level == "warning" ||
         level == "error";
}

}  // namespace

std::string to_json(const Log& log) {
  std::string out =
      "{\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\", "
      "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": {";
  out += "\"name\": " + quote(log.tool.name);
  if (!log.tool.version.empty()) {
    out += ", \"version\": " + quote(log.tool.version);
  }
  if (!log.tool.information_uri.empty()) {
    out += ", \"informationUri\": " + quote(log.tool.information_uri);
  }
  out += ", \"rules\": [";
  for (std::size_t i = 0; i < log.rules.size(); ++i) {
    const Rule& rule = log.rules[i];
    if (i != 0) out += ", ";
    out += "{\"id\": " + quote(rule.id);
    out += ", \"name\": " + quote(rule.name);
    out += ", \"shortDescription\": {\"text\": " + quote(rule.description) +
           "}}";
  }
  out += "]}}, \"results\": [";
  for (std::size_t i = 0; i < log.results.size(); ++i) {
    if (i != 0) out += ", ";
    out += result_json(log.results[i]);
  }
  out += "]}]}";
  return out;
}

bool structurally_valid(std::string_view text, std::string* error) {
  const std::optional<jsonlite::Value> root = jsonlite::parse(text);
  if (!root.has_value()) return fail(error, "not valid JSON");
  const jsonlite::Value* version = root->find("version");
  if (version == nullptr || !version->is_string() ||
      version->str() != "2.1.0") {
    return fail(error, "version must be the string \"2.1.0\"");
  }
  const jsonlite::Value* runs = root->find("runs");
  if (runs == nullptr || !runs->is_array() || runs->size() == 0) {
    return fail(error, "runs must be a non-empty array");
  }
  for (std::size_t ri = 0; ri < runs->size(); ++ri) {
    const jsonlite::Value& run = *runs->at(ri);
    const jsonlite::Value* tool = run.find("tool");
    const jsonlite::Value* driver =
        tool != nullptr ? tool->find("driver") : nullptr;
    const jsonlite::Value* name =
        driver != nullptr ? driver->find("name") : nullptr;
    if (name == nullptr || !name->is_string() || name->str().empty()) {
      return fail(error, "run is missing tool.driver.name");
    }
    // Collect declared rule ids so results can be checked against them.
    std::vector<std::string> rule_ids;
    if (const jsonlite::Value* rules = driver->find("rules")) {
      if (!rules->is_array()) return fail(error, "rules must be an array");
      for (const jsonlite::Value& rule : rules->items()) {
        const jsonlite::Value* id = rule.find("id");
        if (id == nullptr || !id->is_string()) {
          return fail(error, "every rule needs a string id");
        }
        rule_ids.push_back(id->str());
      }
    }
    const jsonlite::Value* results = run.find("results");
    if (results == nullptr || !results->is_array()) {
      return fail(error, "run is missing its results array");
    }
    for (const jsonlite::Value& result : results->items()) {
      const jsonlite::Value* rule_id = result.find("ruleId");
      if (rule_id == nullptr || !rule_id->is_string()) {
        return fail(error, "result is missing ruleId");
      }
      bool declared = false;
      for (const std::string& id : rule_ids) {
        if (id == rule_id->str()) {
          declared = true;
          break;
        }
      }
      if (!declared) {
        return fail(error, "result ruleId \"" + rule_id->str() +
                               "\" is not declared in tool.driver.rules");
      }
      if (const jsonlite::Value* level = result.find("level")) {
        if (!level->is_string() || !known_level(level->str())) {
          return fail(error, "result level must be one of "
                             "none/note/warning/error");
        }
      }
      const jsonlite::Value* message = result.find("message");
      const jsonlite::Value* msg_text =
          message != nullptr ? message->find("text") : nullptr;
      if (msg_text == nullptr || !msg_text->is_string()) {
        return fail(error, "result is missing message.text");
      }
      const jsonlite::Value* locations = result.find("locations");
      if (locations == nullptr || !locations->is_array() ||
          locations->size() == 0) {
        return fail(error, "result needs a non-empty locations array");
      }
      for (const jsonlite::Value& loc : locations->items()) {
        if (!check_location(loc, error, "result location")) return false;
      }
      if (const jsonlite::Value* flows = result.find("codeFlows")) {
        if (!flows->is_array()) {
          return fail(error, "codeFlows must be an array");
        }
        for (const jsonlite::Value& flow : flows->items()) {
          const jsonlite::Value* threads = flow.find("threadFlows");
          if (threads == nullptr || !threads->is_array() ||
              threads->size() == 0) {
            return fail(error, "codeFlow needs a non-empty threadFlows array");
          }
          for (const jsonlite::Value& thread : threads->items()) {
            const jsonlite::Value* steps = thread.find("locations");
            if (steps == nullptr || !steps->is_array() || steps->size() == 0) {
              return fail(error,
                          "threadFlow needs a non-empty locations array");
            }
            for (const jsonlite::Value& step : steps->items()) {
              const jsonlite::Value* step_loc = step.find("location");
              if (step_loc == nullptr ||
                  !check_location(*step_loc, error, "threadFlow step")) {
                if (step_loc == nullptr) {
                  return fail(error, "threadFlow step is missing location");
                }
                return false;
              }
            }
          }
        }
      }
      if (const jsonlite::Value* prints = result.find("partialFingerprints")) {
        if (!prints->is_object()) {
          return fail(error, "partialFingerprints must be an object");
        }
        for (const auto& [key, value] : prints->members()) {
          if (!value.is_string()) {
            return fail(error, "partialFingerprints value for \"" + key +
                                   "\" must be a string");
          }
        }
      }
    }
  }
  return true;
}

}  // namespace uchecker::sarif
