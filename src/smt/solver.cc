#include "smt/solver.h"

#include <algorithm>
#include <chrono>

#include "support/fault_injector.h"
#include "support/profile.h"
#include "support/telemetry.h"

namespace uchecker::smt {
namespace {

// Z3 reports a timeout/cancellation through reason_unknown(); those are
// the unknowns worth retrying with a larger budget. Incompleteness
// ("smt tactic failed...", "unknown") is deterministic and is not.
bool retryable_unknown_reason(const std::string& reason) {
  return reason.find("timeout") != std::string::npos ||
         reason.find("canceled") != std::string::npos ||
         reason.find("cancelled") != std::string::npos ||
         reason.find("resource") != std::string::npos ||
         reason.find("interrupted") != std::string::npos;
}

}  // namespace

std::string_view sat_result_name(SatResult r) {
  switch (r) {
    case SatResult::kSat: return "sat";
    case SatResult::kUnsat: return "unsat";
    case SatResult::kUnknown: return "unknown";
  }
  return "invalid";
}

std::string Model::to_string() const {
  std::string out;
  for (const auto& [name, value] : assignments) {
    if (!out.empty()) out += ", ";
    out += name + " = " + value;
  }
  return out;
}

Checker::Checker(unsigned timeout_ms, unsigned max_retries)
    : timeout_ms_(timeout_ms), max_retries_(max_retries) {}

SolverOutcome Checker::check(const std::vector<z3::expr>& constraints) {
  ++check_count_;
  // Pipeline-level fault point: deliberately *outside* the containment
  // below, so tests can prove the detector's own per-root recovery path.
  FaultInjector::checkpoint("solve");

  const telemetry::SpanScope span(trace_, "solve");
  const auto solve_start = std::chrono::steady_clock::now();
  const std::uint64_t retries_before = retry_count_;

  SolverOutcome outcome;
  unsigned timeout = std::max(1u, timeout_ms_);
  for (unsigned attempt = 0; attempt <= max_retries_; ++attempt) {
    if (deadline_.expired()) {
      outcome.result = SatResult::kUnknown;
      outcome.deadline_exceeded = true;
      outcome.error = deadline_.cancelled() ? "scan cancelled"
                                            : "scan deadline exceeded";
      if (outcome.attempts == 0) outcome.attempts = 1;
      break;
    }
    // Never solve past the scan deadline: clamp this attempt's budget to
    // the remaining wall-clock time.
    const unsigned effective = static_cast<unsigned>(std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(timeout, deadline_.remaining_ms(timeout))));
    outcome.attempts = attempt + 1;
    outcome.attempt_timeouts_ms.push_back(effective);
    outcome.error.clear();
    outcome.model.reset();
    bool retryable = false;
    try {
      // Per-attempt fault point, *inside* containment: an armed throw
      // here degrades to an unknown outcome (transient ones retry).
      FaultInjector::checkpoint("solve-attempt");

      // Re-serialize the query and solve it in a scratch context. Z3
      // 4.8.x's sequence solver is sensitive to AST creation order: the
      // same formula that solves in milliseconds in a freshly-numbered
      // context can hit a multi-second search when its terms were built
      // incrementally by the translator. Round-tripping through SMT-LIB
      // renumbers the ASTs and makes solve times reproducible. Symbol
      // names are preserved, so model extraction is unaffected.
      z3::solver builder(ctx_);
      for (const z3::expr& c : constraints) builder.add(c);
      const std::string smt2 = builder.to_smt2();

      z3::context scratch;
      z3::solver solver(scratch);
      z3::params params(scratch);
      params.set("timeout", effective);
      solver.set(params);
      solver.from_string(smt2.c_str());
      switch (solver.check()) {
        case z3::sat: {
          outcome.result = SatResult::kSat;
          Model model;
          const z3::model m = solver.get_model();
          for (unsigned i = 0; i < m.num_consts(); ++i) {
            const z3::func_decl decl = m.get_const_decl(i);
            const z3::expr value = m.get_const_interp(decl);
            model.assignments[decl.name().str()] = value.to_string();
          }
          outcome.model = std::move(model);
          break;
        }
        case z3::unsat:
          outcome.result = SatResult::kUnsat;
          break;
        case z3::unknown: {
          outcome.result = SatResult::kUnknown;
          const std::string reason = solver.reason_unknown();
          outcome.error = "solver returned unknown (" + reason + ")";
          retryable = retryable_unknown_reason(reason);
          break;
        }
      }
    } catch (const InjectedFault& e) {
      outcome.result = SatResult::kUnknown;
      outcome.error = e.what();
      retryable = e.transient();
    } catch (const z3::exception& e) {
      outcome.result = SatResult::kUnknown;
      outcome.error = e.msg();
    }
    if (outcome.result != SatResult::kUnknown || !retryable) break;
    if (attempt < max_retries_) {
      ++retry_count_;
      timeout = std::min(timeout * 2, kTimeoutEscalationCap);
    }
  }

  if (telemetry_ != nullptr || trace_ != nullptr || profiler_ != nullptr) {
    const auto dur_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - solve_start)
            .count());
    const auto escalations =
        static_cast<unsigned>(retry_count_ - retries_before);
    if (profiler_ != nullptr) {
      profiler_->record_solver(origin_sink_, origin_file_, origin_line_,
                               static_cast<double>(dur_us) / 1000.0,
                               /*cache_hit=*/false);
    }
    if (trace_ != nullptr) {
      trace_->record_solver_call(dur_us, outcome.attempts, escalations,
                                 outcome.deadline_exceeded,
                                 sat_result_name(outcome.result));
    }
    if (telemetry_ != nullptr) {
      telemetry::MetricsRegistry& m = telemetry_->metrics();
      m.counter("solver.checks").add(1);
      m.counter(std::string("solver.") +
                std::string(sat_result_name(outcome.result)))
          .add(1);
      if (escalations > 0) m.counter("solver.retries").add(escalations);
      if (outcome.deadline_exceeded) {
        m.counter("solver.deadline_exceeded").add(1);
      }
      m.histogram("solver.latency_ms")
          .observe(static_cast<double>(dur_us) / 1000.0);
    }
  }
  return outcome;
}

SolverOutcome Checker::check(const z3::expr& constraint) {
  return check(std::vector<z3::expr>{constraint});
}

}  // namespace uchecker::smt
