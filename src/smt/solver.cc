#include "smt/solver.h"

namespace uchecker::smt {

std::string_view sat_result_name(SatResult r) {
  switch (r) {
    case SatResult::kSat: return "sat";
    case SatResult::kUnsat: return "unsat";
    case SatResult::kUnknown: return "unknown";
  }
  return "invalid";
}

std::string Model::to_string() const {
  std::string out;
  for (const auto& [name, value] : assignments) {
    if (!out.empty()) out += ", ";
    out += name + " = " + value;
  }
  return out;
}

Checker::Checker(unsigned timeout_ms) : timeout_ms_(timeout_ms) {}

SolverOutcome Checker::check(const std::vector<z3::expr>& constraints) {
  ++check_count_;
  SolverOutcome outcome;
  try {
    // Re-serialize the query and solve it in a scratch context. Z3
    // 4.8.x's sequence solver is sensitive to AST creation order: the
    // same formula that solves in milliseconds in a freshly-numbered
    // context can hit a multi-second search when its terms were built
    // incrementally by the translator. Round-tripping through SMT-LIB
    // renumbers the ASTs and makes solve times reproducible. Symbol
    // names are preserved, so model extraction is unaffected.
    z3::solver builder(ctx_);
    for (const z3::expr& c : constraints) builder.add(c);
    const std::string smt2 = builder.to_smt2();

    z3::context scratch;
    z3::solver solver(scratch);
    z3::params params(scratch);
    params.set("timeout", timeout_ms_);
    solver.set(params);
    solver.from_string(smt2.c_str());
    switch (solver.check()) {
      case z3::sat: {
        outcome.result = SatResult::kSat;
        Model model;
        const z3::model m = solver.get_model();
        for (unsigned i = 0; i < m.num_consts(); ++i) {
          const z3::func_decl decl = m.get_const_decl(i);
          const z3::expr value = m.get_const_interp(decl);
          model.assignments[decl.name().str()] = value.to_string();
        }
        outcome.model = std::move(model);
        break;
      }
      case z3::unsat:
        outcome.result = SatResult::kUnsat;
        break;
      case z3::unknown:
        outcome.result = SatResult::kUnknown;
        outcome.error = "solver returned unknown (timeout or incompleteness)";
        break;
    }
  } catch (const z3::exception& e) {
    outcome.result = SatResult::kUnknown;
    outcome.error = e.msg();
  }
  return outcome;
}

SolverOutcome Checker::check(const z3::expr& constraint) {
  return check(std::vector<z3::expr>{constraint});
}

}  // namespace uchecker::smt
