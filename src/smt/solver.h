// Thin RAII layer over the Z3 C++ API.
//
// Keeps Z3 usage in one place: context ownership, solver configuration
// (timeouts), satisfiability checking with exception containment, and
// model extraction. The translation module builds z3::expr terms through
// the context exposed here; everything downstream of the detector sees
// only SatResult / SolverOutcome values.
#pragma once

#include <z3++.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace uchecker::smt {

enum class SatResult : std::uint8_t { kSat, kUnsat, kUnknown };

[[nodiscard]] std::string_view sat_result_name(SatResult r);

// A satisfying assignment, rendered as strings for reporting. For an
// unrestricted-file-upload finding this typically shows e.g.
//   s_ext = "php", s_filename = "x"
struct Model {
  std::map<std::string, std::string> assignments;

  [[nodiscard]] std::string to_string() const;
};

struct SolverOutcome {
  SatResult result = SatResult::kUnknown;
  std::optional<Model> model;   // present iff result == kSat
  std::string error;            // populated when Z3 threw
};

// Wraps one z3::context + z3::solver pair. Not thread-safe (Z3 contexts
// are not); create one Checker per scan thread.
class Checker {
 public:
  explicit Checker(unsigned timeout_ms = 5000);

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  [[nodiscard]] z3::context& ctx() { return ctx_; }

  // Checks the conjunction of `constraints`. Any z3::exception is caught
  // and converted into an outcome with result == kUnknown.
  [[nodiscard]] SolverOutcome check(const std::vector<z3::expr>& constraints);

  // Convenience for a single constraint.
  [[nodiscard]] SolverOutcome check(const z3::expr& constraint);

  // Total number of check() calls, for benchmark accounting.
  [[nodiscard]] std::uint64_t check_count() const { return check_count_; }

 private:
  z3::context ctx_;
  unsigned timeout_ms_;
  std::uint64_t check_count_ = 0;
};

}  // namespace uchecker::smt
