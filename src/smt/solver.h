// Thin RAII layer over the Z3 C++ API.
//
// Keeps Z3 usage in one place: context ownership, solver configuration
// (timeouts), satisfiability checking with exception containment, and
// model extraction. The translation module builds z3::expr terms through
// the context exposed here; everything downstream of the detector sees
// only SatResult / SolverOutcome values.
//
// Robustness: check() never lets a z3::exception escape, clamps its
// timeout to any attached scan Deadline, and retries *retryable*
// unknowns (Z3 timeouts/cancellations and TransientError fault
// injections) with escalating timeouts — 1x, 2x, 4x the configured base,
// capped at kTimeoutEscalationCap — recording every attempt in the
// returned SolverOutcome.
#pragma once

#include <z3++.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/deadline.h"

namespace uchecker::telemetry {
class ScanTrace;
class Telemetry;
}  // namespace uchecker::telemetry

namespace uchecker::profile {
class PathProfiler;
}  // namespace uchecker::profile

namespace uchecker::smt {

enum class SatResult : std::uint8_t { kSat, kUnsat, kUnknown };

[[nodiscard]] std::string_view sat_result_name(SatResult r);

// A satisfying assignment, rendered as strings for reporting. For an
// unrestricted-file-upload finding this typically shows e.g.
//   s_ext = "php", s_filename = "x"
struct Model {
  std::map<std::string, std::string> assignments;

  [[nodiscard]] std::string to_string() const;
};

struct SolverOutcome {
  SatResult result = SatResult::kUnknown;
  std::optional<Model> model;   // present iff result == kSat
  std::string error;            // populated when Z3 threw / timed out
  // Retry bookkeeping: how many solve attempts ran and the timeout (ms)
  // each one was given. attempts == 1 for a clean first solve;
  // non-retryable failures never retry.
  unsigned attempts = 0;
  std::vector<unsigned> attempt_timeouts_ms;
  // True when the scan deadline expired (or the scan was cancelled)
  // before or during solving; such outcomes are never retried.
  bool deadline_exceeded = false;
};

// Wraps one z3::context + z3::solver pair. Not thread-safe (Z3 contexts
// are not); create one Checker per scan thread.
class Checker {
 public:
  // Escalated per-attempt timeouts never exceed this.
  static constexpr unsigned kTimeoutEscalationCap = 60'000;

  explicit Checker(unsigned timeout_ms = 5000, unsigned max_retries = 2);

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  [[nodiscard]] z3::context& ctx() { return ctx_; }

  // Bounds all subsequent check() calls: per-attempt timeouts are
  // clamped to the remaining wall-clock time, and an already-expired
  // deadline short-circuits to kUnknown without invoking Z3.
  void set_deadline(Deadline deadline) { deadline_ = std::move(deadline); }
  [[nodiscard]] const Deadline& deadline() const { return deadline_; }

  // Attaches telemetry (both optional, default detached). With a trace,
  // every check() records a "solve" span plus a latency sample carrying
  // attempt count and timeout escalations; with a Telemetry, solver
  // counters (checks, sat/unsat/unknown, retries) and the
  // "solver.latency_ms" histogram are updated.
  void set_telemetry(telemetry::Telemetry* telemetry,
                     telemetry::ScanTrace* trace) {
    telemetry_ = telemetry;
    trace_ = trace;
  }
  [[nodiscard]] telemetry::ScanTrace* trace() const { return trace_; }

  // Attaches the path-explosion profiler (null detaches — the default,
  // one pointer test per check). With a profiler, every check()'s wall
  // time and query count are attributed to the origin set by
  // set_query_origin; the vulnerability model also records its warm
  // SolverQueryCache/memo hits against the same origins.
  void set_profiler(profile::PathProfiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] profile::PathProfiler* profiler() const { return profiler_; }

  // Names the sink occurrence issuing subsequent check() calls: the
  // sink function plus the raw (file id, line) of the call site. The
  // vulnerability model sets this before each sink's constraint checks.
  void set_query_origin(std::string sink, std::uint32_t file,
                        std::uint32_t line) {
    origin_sink_ = std::move(sink);
    origin_file_ = file;
    origin_line_ = line;
  }

  // Checks the conjunction of `constraints`. Any z3::exception is caught
  // and converted into an outcome with result == kUnknown.
  [[nodiscard]] SolverOutcome check(const std::vector<z3::expr>& constraints);

  // Convenience for a single constraint.
  [[nodiscard]] SolverOutcome check(const z3::expr& constraint);

  // Total number of check() calls, for benchmark accounting.
  [[nodiscard]] std::uint64_t check_count() const { return check_count_; }

  // Total retry attempts (beyond each check's first) across all checks.
  [[nodiscard]] std::uint64_t retry_count() const { return retry_count_; }

 private:
  z3::context ctx_;
  unsigned timeout_ms_;
  unsigned max_retries_;
  Deadline deadline_;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::ScanTrace* trace_ = nullptr;
  profile::PathProfiler* profiler_ = nullptr;
  std::string origin_sink_;
  std::uint32_t origin_file_ = 0;
  std::uint32_t origin_line_ = 0;
  std::uint64_t check_count_ = 0;
  std::uint64_t retry_count_ = 0;
};

}  // namespace uchecker::smt
