// Parallel per-file parsing on a small thread pool.
//
// Each file is lexed and parsed into its own Arena with its own
// DiagnosticSink, so workers share nothing while they run: no lock
// guards an allocation, and no diagnostic interleaves with another
// file's. Results come back in input order; the caller merges the
// per-file sinks into the scan-wide one serially, which keeps the
// merged diagnostic stream deterministic regardless of thread count.
//
// Exceptions do not cross threads raw: a file whose parse throws (fault
// injection, bad_alloc) carries the exception_ptr in its unit, and the
// caller rethrows per file to keep the existing contained-error
// reporting (phase/file attribution) intact.
#pragma once

#include <cstddef>
#include <exception>
#include <vector>

#include "phpast/ast.h"
#include "support/arena.h"
#include "support/deadline.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::phpparse {

// One file's parse outcome. The AST is valid exactly as long as `arena`;
// moving the unit moves arena block ownership without invalidating it.
struct ParsedUnit {
  Arena arena;
  phpast::PhpFile ast;
  // False when the deadline expired (or the pool was cancelled) before
  // this file was picked up; its ast is empty and no error is recorded.
  bool attempted = false;
  // Set when lex/parse threw; `ast` must be ignored. The caller decides
  // how to surface it (the detector rethrows for error attribution).
  std::exception_ptr error;
  // Per-file diagnostics, stamped with the "parse" phase, in in-file
  // order. Merge into the scan sink with DiagnosticSink::merge().
  DiagnosticSink diags;
};

// Resolves a ScanOptions-style thread request: 0 = auto (hardware
// concurrency capped at 8), otherwise the request itself; never more
// than one thread per file and never less than 1.
[[nodiscard]] std::size_t resolve_parse_threads(std::size_t requested,
                                                std::size_t file_count);

// Parses `files` (already registered with a SourceManager; their
// pointers must stay valid throughout) into one ParsedUnit each, in
// input order. `threads` is the resolved worker count: 1 parses
// serially on the calling thread — byte-identical diagnostics and AST,
// no pool. `deadline` (optional) is polled before each file; files not
// yet started when it expires come back with attempted == false.
[[nodiscard]] std::vector<ParsedUnit> parse_files(
    const std::vector<const SourceFile*>& files, std::size_t threads,
    const Deadline* deadline = nullptr);

}  // namespace uchecker::phpparse
