#include "phpparse/parse_pool.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "phpparse/parser.h"

namespace uchecker::phpparse {
namespace {

// One file, one arena, one sink. Never throws: exceptions become the
// unit's exception_ptr so they can cross the thread join.
void parse_one(const SourceFile& file, ParsedUnit& unit) {
  unit.attempted = true;
  unit.diags.set_phase("parse");
  try {
    unit.ast = parse_php(file, unit.diags, unit.arena);
  } catch (...) {
    unit.error = std::current_exception();
  }
}

}  // namespace

std::size_t resolve_parse_threads(std::size_t requested,
                                  std::size_t file_count) {
  std::size_t n = requested;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = std::min<std::size_t>(hw == 0 ? 1 : hw, 8);
  }
  if (file_count > 0) n = std::min(n, file_count);
  return std::max<std::size_t>(n, 1);
}

std::vector<ParsedUnit> parse_files(
    const std::vector<const SourceFile*>& files, std::size_t threads,
    const Deadline* deadline) {
  std::vector<ParsedUnit> units(files.size());
  const auto expired = [deadline] {
    return deadline != nullptr && deadline->expired();
  };

  if (threads <= 1 || files.size() <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (expired()) break;
      parse_one(*files[i], units[i]);
    }
    return units;
  }

  // Work stealing via one shared counter; every worker owns the unit it
  // claimed outright (distinct slot, own arena/sink), so the counter is
  // the only synchronization besides the joins.
  std::atomic<std::size_t> next{0};
  const std::size_t worker_count =
      std::min(resolve_parse_threads(threads, files.size()), files.size());
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= files.size() || expired()) return;
        parse_one(*files[i], units[i]);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return units;
}

}  // namespace uchecker::phpparse
