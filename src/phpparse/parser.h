// Recursive-descent parser for the PHP subset defined in phpast/ast.h.
//
// Replaces the paper's dependency on the external PHP-Parser tool. The
// grammar follows PHP 7 operator precedence; interpolated strings are
// desugared into concatenation chains so the downstream symbolic
// interpreter only sees the paper's Table I core syntax plus statements.
//
// The parser builds the whole AST inside one caller-provided Arena:
// nodes are placement-allocated, child lists are arena spans, and every
// name/literal view is arena-backed (see phpast/ast.h for the ownership
// model). The returned PhpFile is valid exactly as long as that arena.
#pragma once

#include <string>
#include <vector>

#include "phpast/ast.h"
#include "phplex/token.h"
#include "support/arena.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::phpparse {

class Parser {
 public:
  Parser(const SourceFile& file, std::vector<phplex::Token> tokens,
         DiagnosticSink& diags, Arena& arena);

  // Parses the whole token stream into a PhpFile. Parse errors are
  // reported to the sink; the parser recovers at statement boundaries so
  // one bad statement does not lose the rest of the file.
  [[nodiscard]] phpast::PhpFile parse_file();

 private:
  using ExprPtr = phpast::ExprPtr;
  using StmtPtr = phpast::StmtPtr;

  // --- token helpers
  [[nodiscard]] const phplex::Token& peek(std::size_t ahead = 0) const;
  const phplex::Token& advance();
  [[nodiscard]] bool check(phplex::TokenKind kind) const;
  bool match(phplex::TokenKind kind);
  const phplex::Token& expect(phplex::TokenKind kind, const char* what);
  [[nodiscard]] bool at_end() const;
  [[nodiscard]] bool check_ident(const char* name) const;
  void synchronize();

  // --- arena helpers
  template <typename T, typename... Args>
  [[nodiscard]] T* make(Args&&... args) {
    return arena_.make<T>(std::forward<Args>(args)...);
  }
  template <typename T>
  [[nodiscard]] Span<T> span_of(const std::vector<T>& v) {
    return arena_.make_span(v);
  }
  // Arena-backed view of `s` lowercased; returns `s` itself when it is
  // already lowercase (the common case — no copy).
  [[nodiscard]] std::string_view lower_view(std::string_view s);
  // Error placeholder: guarantees node constructors never receive a null
  // required child after a failed sub-parse.
  [[nodiscard]] ExprPtr require_expr(ExprPtr expr, SourceLoc loc);

  // --- statements
  StmtPtr parse_statement();
  std::vector<StmtPtr> parse_block_or_single();
  std::vector<StmtPtr> parse_braced_block();
  // Alternative syntax body: statements until one of the given
  // end-keywords (checked as identifiers, e.g. "endif").
  std::vector<StmtPtr> parse_alt_body(std::initializer_list<const char*> ends);
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_do_while();
  StmtPtr parse_for();
  StmtPtr parse_foreach();
  StmtPtr parse_switch();
  StmtPtr parse_function_decl();
  StmtPtr parse_class_decl();
  StmtPtr parse_try();
  std::vector<phpast::Param> parse_param_list();

  // --- expressions (precedence climbing)
  ExprPtr parse_expr();
  ExprPtr parse_assignment();
  ExprPtr parse_ternary();
  ExprPtr parse_binary(int min_precedence);
  ExprPtr parse_unary();
  ExprPtr parse_postfix(ExprPtr base);
  ExprPtr parse_primary();
  ExprPtr parse_array_literal(SourceLoc loc, bool bracket_form);
  std::vector<ExprPtr> parse_arg_list();
  ExprPtr desugar_template_string(const phplex::Token& token);

  const SourceFile& file_;
  std::vector<phplex::Token> tokens_;
  DiagnosticSink& diags_;
  Arena& arena_;
  std::size_t pos_ = 0;
  // Expression/statement recursion depth, capped to keep the recursive-
  // descent parser within stack bounds on pathological inputs.
  int depth_ = 0;
  // Reusable buffer for building names that are then arena-copied.
  std::string scratch_;
};

// Convenience: lex + parse a registered source file. The returned AST
// lives entirely in `arena` (plus the PhpFile handle's own members).
[[nodiscard]] phpast::PhpFile parse_php(const SourceFile& file,
                                        DiagnosticSink& diags, Arena& arena);

}  // namespace uchecker::phpparse
