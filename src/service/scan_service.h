// The scand service core: a long-running scan queue with durable
// caches, backpressure and a watchdog (the library behind the scand
// daemon; see service/scan_server.h for the socket front end).
//
// What it adds over scan_many:
//
//  - Durable caches. Verdicts (whole ScanReport JSON, keyed by engine
//    version + scan options + content hashes) and solver outcomes
//    (SolverQueryCache entries) persist across restarts in
//    corruption-detecting KvStores (support/store.h). A cache record
//    that fails its checksum or no longer decodes is *counted and
//    recomputed*, never trusted: the failure mode of every crash,
//    torn write or bit flip is a cold scan, not a wrong verdict.
//  - Backpressure. The request queue is bounded; submit() on a full
//    queue fails immediately (the server replies "overloaded") instead
//    of buffering without limit.
//  - Watchdog. Every request gets a deadline (ServiceOptions::
//    request_timeout). A scan that overruns it plus a grace period is
//    cancelled through its token, answered kAnalysisError on the
//    caller's behalf, and its app is quarantined (persistently): a
//    wedged scan costs one worker temporarily — the watchdog retires
//    that worker and spawns a replacement — but never the daemon, and
//    the same content can never wedge it twice.
//  - Drain shutdown. stop() finishes every queued request, flushes the
//    caches and compacts the stores; kill -9 at any point loses at most
//    the records not yet appended (each put is flushed to the OS).
//
// Cache replay is byte-exact: a warm hit returns the stored JSON bytes,
// which are the to_json() of the original scan — so a client cannot
// tell a replay from a fresh scan (acceptance: warm verdicts are
// byte-identical to single-shot scans of the same content).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/detector/detector.h"
#include "support/store.h"

namespace uchecker::telemetry {
class Telemetry;
}  // namespace uchecker::telemetry

namespace uchecker::service {

struct ServiceOptions {
  // Directory for the durable stores (created if missing). Empty
  // disables persistence: the service still runs, fully in-memory.
  std::string state_dir;
  unsigned workers = 2;
  // Bounded queue: submit() fails once this many requests are waiting
  // (in-flight scans do not count against it).
  std::size_t max_queue = 32;
  // Per-request wall-clock deadline (0 = unlimited; the watchdog is
  // then idle and scans can only be bounded by scan.budget).
  std::chrono::milliseconds request_timeout{0};
  // How far past its deadline a scan may run before the watchdog
  // cancels it, answers for it and quarantines the app.
  std::chrono::milliseconds watchdog_grace{1000};
  std::chrono::milliseconds watchdog_poll{20};
  // Base configuration for every scan. `scan.query_cache` is
  // overwritten: all scans share the service's persistent solver cache.
  core::ScanOptions scan;
  // Service-level counters/gauges/histograms land here (may be the
  // same Telemetry as scan.telemetry). Optional.
  telemetry::Telemetry* telemetry = nullptr;
};

// The answer to one request. `report_json` is the exact reply bytes:
// the freshly rendered to_json() on a cold scan, the stored bytes on a
// warm hit (identical by construction).
struct ScanOutcome {
  core::ScanReport report;
  std::string report_json;
  bool from_cache = false;
  bool quarantined = false;
};

class ScanService {
 public:
  explicit ScanService(ServiceOptions options);
  ~ScanService();

  ScanService(const ScanService&) = delete;
  ScanService& operator=(const ScanService&) = delete;

  // Opens the stores (replaying persisted state) and launches the
  // worker and watchdog threads. Persistence failures (unwritable
  // state_dir, corrupt files) degrade to cold/in-memory operation and
  // surface in telemetry; start() itself only fails when called twice.
  bool start();

  // Drains the queue (every accepted request is still answered),
  // flushes and compacts the stores, joins all threads. Idempotent.
  void stop();

  // Enqueues one scan. Returns an invalid future (valid() == false)
  // when the queue is full or the service is stopping — the caller
  // should report backpressure, not block.
  [[nodiscard]] std::future<ScanOutcome> submit(core::Application app);

  // Convenience synchronous wrapper: nullopt = backpressure.
  [[nodiscard]] std::optional<ScanOutcome> scan(core::Application app);

  [[nodiscard]] std::size_t queue_depth() const;

  // The persistent verdict-cache key for `app` under `scan` options:
  // FNV over engine version, the option fields that can change a
  // verdict, and every (file name, content hash). Exposed for tests
  // and for external cache tooling.
  [[nodiscard]] static std::string verdict_key(const core::Application& app,
                                               const core::ScanOptions& scan);

  [[nodiscard]] bool is_quarantined(const core::Application& app) const;

  // Fleet-wide solver cache (preloaded from disk on start()).
  [[nodiscard]] core::SolverQueryCache& solver_cache() { return solver_cache_; }

  // Aggregated store health (verdict + solver + quarantine stores).
  [[nodiscard]] store::StoreStats verdict_store_stats() const;
  [[nodiscard]] store::StoreStats solver_store_stats() const;

  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  struct InFlight {
    std::string app_name;
    std::string key;
    CancellationSource cancel;
    std::chrono::steady_clock::time_point deadline_at{};
    bool has_deadline = false;
    // Whoever flips this first (worker or watchdog) owns the promise.
    std::atomic<bool> replied{false};
    // Set by the watchdog: the worker running this scan is considered
    // lost and must exit instead of taking more work (a replacement is
    // already running).
    std::atomic<bool> abandoned{false};
    std::promise<ScanOutcome> promise;
  };

  struct Request {
    core::Application app;
    std::shared_ptr<InFlight> flight;
  };

  void worker_loop();
  void watchdog_loop();
  void process(Request& request);
  void publish_store_metrics();
  void count(const char* name, std::uint64_t n = 1);
  void set_gauge(const char* name, double value);

  ServiceOptions options_;
  core::SolverQueryCache solver_cache_;
  store::KvStore verdict_store_;
  store::KvStore solver_store_;
  store::KvStore quarantine_store_;

  mutable std::mutex mu_;
  std::condition_variable cv_;           // workers: queue / stop
  std::condition_variable watchdog_cv_;  // watchdog: stop only
  std::deque<Request> queue_;
  std::vector<std::shared_ptr<InFlight>> inflight_;
  std::vector<std::thread> threads_;  // workers + replacements
  std::thread watchdog_;
  bool started_ = false;
  bool stopping_ = false;
};

// Recursively collects *.php / *.module / *.inc files under `root`
// (or the single file itself) into an Application named after the
// path. Unreadable files are skipped and counted; an empty result is
// reported through `error`. Shared by scand and its tests.
[[nodiscard]] std::optional<core::Application> load_application(
    const std::string& root, std::string& error,
    std::size_t* unreadable = nullptr);

}  // namespace uchecker::service
