// The scand service core: a long-running scan queue with durable
// caches, backpressure and a watchdog (the library behind the scand
// daemon; see service/scan_server.h for the socket front end).
//
// What it adds over scan_many:
//
//  - Durable caches. Verdicts (whole ScanReport JSON, keyed by engine
//    version + scan options + content hashes) and solver outcomes
//    (SolverQueryCache entries) persist across restarts in
//    corruption-detecting KvStores (support/store.h). A cache record
//    that fails its checksum or no longer decodes is *counted and
//    recomputed*, never trusted: the failure mode of every crash,
//    torn write or bit flip is a cold scan, not a wrong verdict.
//  - Backpressure. The request queue is bounded; submit() on a full
//    queue fails immediately (the server replies "overloaded") instead
//    of buffering without limit.
//  - Watchdog. Every request gets a deadline (ServiceOptions::
//    request_timeout). A scan that overruns it plus a grace period is
//    cancelled through its token, answered kAnalysisError on the
//    caller's behalf, and its app is quarantined (persistently): a
//    wedged scan costs one worker temporarily — the watchdog retires
//    that worker and spawns a replacement — but never the daemon, and
//    the same content can never wedge it twice.
//  - Drain shutdown. stop() finishes every queued request, flushes the
//    caches and compacts the stores; kill -9 at any point loses at most
//    the records not yet appended (each put is flushed to the OS).
//
// Cache replay is byte-exact: a warm hit returns the stored JSON bytes,
// which are the to_json() of the original scan — so a client cannot
// tell a replay from a fresh scan (acceptance: warm verdicts are
// byte-identical to single-shot scans of the same content).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/detector/detector.h"
#include "support/store.h"

namespace uchecker::telemetry {
class Telemetry;
class FlightRecorder;
}  // namespace uchecker::telemetry

namespace uchecker::logging {
class Logger;
}  // namespace uchecker::logging

namespace uchecker::service {

struct ServiceOptions {
  // Directory for the durable stores (created if missing). Empty
  // disables persistence: the service still runs, fully in-memory.
  std::string state_dir;
  unsigned workers = 2;
  // Bounded queue: submit() fails once this many requests are waiting
  // (in-flight scans do not count against it).
  std::size_t max_queue = 32;
  // Per-request wall-clock deadline (0 = unlimited; the watchdog is
  // then idle and scans can only be bounded by scan.budget).
  std::chrono::milliseconds request_timeout{0};
  // How far past its deadline a scan may run before the watchdog
  // cancels it, answers for it and quarantines the app.
  std::chrono::milliseconds watchdog_grace{1000};
  std::chrono::milliseconds watchdog_poll{20};
  // Base configuration for every scan. `scan.query_cache` is
  // overwritten: all scans share the service's persistent solver cache.
  core::ScanOptions scan;
  // Service-level counters/gauges/histograms land here (may be the
  // same Telemetry as scan.telemetry). Optional.
  telemetry::Telemetry* telemetry = nullptr;
  // Structured log lines (request_done, watchdog_cancel, lifecycle)
  // land here. Optional; must outlive the service.
  logging::Logger* logger = nullptr;
  // Ring size of each worker's flight recorder (rounded up to a power
  // of two). 0 disables flight recording entirely.
  std::size_t flight_recorder_capacity = 256;
  // How many recently completed requests top_requests() remembers.
  std::size_t top_history = 256;
  // Run every cold scan with the engine-introspection profiler
  // (ScanOptions::profile) and remember the per-root profiles of the
  // last `profile_history` profiled scans for `scanctl profile`. The
  // profile is stripped from the report before it is rendered and
  // cached, so verdict-cache replays stay byte-identical to unprofiled
  // scans — which is also why the toggle is *not* part of verdict_key.
  bool profile = false;
  std::size_t profile_history = 32;
};

// The answer to one request. `report_json` is the exact reply bytes:
// the freshly rendered to_json() on a cold scan, the stored bytes on a
// warm hit (identical by construction).
struct ScanOutcome {
  core::ScanReport report;
  std::string report_json;
  // The request's trace ID: the caller's if one was supplied to
  // submit(), otherwise minted by the service. Cache replays keep the
  // *request's* ID here even though the stored report bytes carry the
  // original scan's ID — the reply envelope is about this request.
  std::string trace_id;
  bool from_cache = false;
  bool quarantined = false;
};

// One completed request's cost attribution, as remembered for
// `scanctl top`: where its wall time went and which root dominated.
struct RequestCost {
  std::string app;
  std::string trace_id;
  std::string verdict;
  double total_ms = 0.0;
  double parse_ms = 0.0;
  double interp_ms = 0.0;
  double solve_ms = 0.0;
  std::uint64_t solver_calls = 0;
  bool from_cache = false;
  bool quarantined = false;
  std::string top_root;  // most expensive root (interp + solve)
  double top_root_ms = 0.0;
};

// One profiled request's engine introspection, as remembered for
// `scanctl profile` (ServiceOptions::profile). The profile is held here
// — never in the cached report bytes.
struct RecentProfile {
  std::string app;
  std::string trace_id;
  std::string verdict;
  profile::ExplosionProfile profile;
};

class ScanService {
 public:
  explicit ScanService(ServiceOptions options);
  ~ScanService();

  ScanService(const ScanService&) = delete;
  ScanService& operator=(const ScanService&) = delete;

  // Opens the stores (replaying persisted state) and launches the
  // worker and watchdog threads. Persistence failures (unwritable
  // state_dir, corrupt files) degrade to cold/in-memory operation and
  // surface in telemetry; start() itself only fails when called twice.
  bool start();

  // Drains the queue (every accepted request is still answered),
  // flushes and compacts the stores, joins all threads. Idempotent.
  void stop();

  // Enqueues one scan. Returns an invalid future (valid() == false)
  // when the queue is full or the service is stopping — the caller
  // should report backpressure, not block. `trace_id` propagates into
  // every span, metric exemplar, log line and the report itself; when
  // empty the service mints one, so every request is traceable.
  [[nodiscard]] std::future<ScanOutcome> submit(core::Application app,
                                                std::string trace_id = {});

  // Convenience synchronous wrapper: nullopt = backpressure.
  [[nodiscard]] std::optional<ScanOutcome> scan(core::Application app,
                                                std::string trace_id = {});

  [[nodiscard]] std::size_t queue_depth() const;

  // The `n` most expensive completed requests (by total wall time),
  // most expensive first, drawn from the last ServiceOptions::
  // top_history completions. Powers `scanctl top`.
  [[nodiscard]] std::vector<RequestCost> top_requests(std::size_t n) const;

  // The `n` most recent profiled scans (ServiceOptions::profile),
  // newest first. Cache replays record no profile (nothing ran).
  // Powers `scanctl profile`.
  [[nodiscard]] std::vector<RecentProfile> recent_profiles(
      std::size_t n) const;

  // When start() succeeded (steady clock). Powers status/ping uptime.
  [[nodiscard]] std::chrono::steady_clock::time_point started_at() const {
    return started_at_;
  }

  // The persistent verdict-cache key for `app` under `scan` options:
  // FNV over engine version, the option fields that can change a
  // verdict, and every (file name, content hash). Exposed for tests
  // and for external cache tooling.
  [[nodiscard]] static std::string verdict_key(const core::Application& app,
                                               const core::ScanOptions& scan);

  [[nodiscard]] bool is_quarantined(const core::Application& app) const;

  // Fleet-wide solver cache (preloaded from disk on start()).
  [[nodiscard]] core::SolverQueryCache& solver_cache() { return solver_cache_; }

  // Aggregated store health (verdict + solver + quarantine stores).
  [[nodiscard]] store::StoreStats verdict_store_stats() const;
  [[nodiscard]] store::StoreStats solver_store_stats() const;

  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  struct InFlight {
    std::string app_name;
    std::string key;
    std::string trace_id;
    // The flight recorder of the worker running this scan (set at
    // pickup). Recorders live in recorders_ for the service's lifetime,
    // so the watchdog can dump one even after the worker is retired.
    telemetry::FlightRecorder* recorder = nullptr;
    CancellationSource cancel;
    std::chrono::steady_clock::time_point deadline_at{};
    bool has_deadline = false;
    // Whoever flips this first (worker or watchdog) owns the promise.
    std::atomic<bool> replied{false};
    // Set by the watchdog: the worker running this scan is considered
    // lost and must exit instead of taking more work (a replacement is
    // already running).
    std::atomic<bool> abandoned{false};
    std::promise<ScanOutcome> promise;
  };

  struct Request {
    core::Application app;
    std::shared_ptr<InFlight> flight;
  };

  void worker_loop();
  void watchdog_loop();
  void process(Request& request, telemetry::FlightRecorder* recorder);
  void publish_store_metrics();
  void count(const char* name, std::uint64_t n = 1);
  void set_gauge(const char* name, double value);
  void remember_cost(RequestCost cost);
  void remember_profile(RecentProfile profile);
  // Writes `recorder`'s dump to state_dir/flightrec-<tag>.json (no-op
  // without a state_dir). Called by the watchdog (tag = verdict key)
  // and by stop() for the SIGTERM drain (tag = worker index).
  void dump_flight(const telemetry::FlightRecorder& recorder,
                   const std::string& tag);

  ServiceOptions options_;
  core::SolverQueryCache solver_cache_;
  store::KvStore verdict_store_;
  store::KvStore solver_store_;
  store::KvStore quarantine_store_;

  mutable std::mutex mu_;
  std::condition_variable cv_;           // workers: queue / stop
  std::condition_variable watchdog_cv_;  // watchdog: stop only
  std::deque<Request> queue_;
  std::vector<std::shared_ptr<InFlight>> inflight_;
  std::vector<std::thread> threads_;  // workers + replacements
  std::thread watchdog_;
  bool started_ = false;
  bool stopping_ = false;

  // One flight recorder per worker thread (including replacements).
  // Append-only under mu_; entries are never removed, so raw pointers
  // into it (InFlight::recorder) stay valid until destruction.
  std::vector<std::unique_ptr<telemetry::FlightRecorder>> recorders_;

  // Recently completed requests, newest at the back, bounded by
  // options_.top_history. Own mutex: readers (scanctl top) must not
  // contend with the scheduler lock.
  mutable std::mutex costs_mu_;
  std::deque<RequestCost> recent_costs_;

  // Profiles of recently completed profiled scans, newest at the back,
  // bounded by options_.profile_history (same locking rationale).
  mutable std::mutex profiles_mu_;
  std::deque<RecentProfile> recent_profiles_;

  std::chrono::steady_clock::time_point started_at_{};
};

// Mints a fresh trace ID (16 lowercase hex chars): time + a process-
// wide sequence + `hint`, FNV-mixed. Collisions across processes are
// harmless (trace IDs label, they don't key).
[[nodiscard]] std::string mint_trace_id(std::string_view hint);

// Recursively collects *.php / *.module / *.inc files under `root`
// (or the single file itself) into an Application named after the
// path. Unreadable files are skipped and counted; an empty result is
// reported through `error`. Shared by scand and its tests.
[[nodiscard]] std::optional<core::Application> load_application(
    const std::string& root, std::string& error,
    std::size_t* unreadable = nullptr);

}  // namespace uchecker::service
