#include "service/scan_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "core/detector/report_io.h"
#include "support/jsonlite.h"
#include "support/profile.h"
#include "support/prom_export.h"
#include "support/sarif_export.h"
#include "support/strutil.h"
#include "support/telemetry.h"

namespace uchecker::service {
namespace {

std::string error_response(std::string_view message) {
  return "{\"status\": \"error\", \"message\": " +
         strutil::quote(message) + "}";
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Builds the Application named in a scan request: either an on-disk
// tree ("path") or inline sources ("app"). Returns nullopt with
// `error` set on any shape problem.
std::optional<core::Application> request_application(
    const jsonlite::Value& request, std::string& error) {
  if (const jsonlite::Value* path = request.find("path");
      path != nullptr && path->is_string()) {
    return load_application(path->str(), error);
  }
  const jsonlite::Value* app = request.find("app");
  if (app == nullptr || !app->is_object()) {
    error = "scan needs \"path\" (string) or \"app\" (object)";
    return std::nullopt;
  }
  const jsonlite::Value* name = app->find("name");
  const jsonlite::Value* files = app->find("files");
  if (name == nullptr || !name->is_string() || files == nullptr ||
      !files->is_array()) {
    error = "inline app needs \"name\" (string) and \"files\" (array)";
    return std::nullopt;
  }
  core::Application result;
  result.name = name->str();
  for (const jsonlite::Value& file : files->items()) {
    const jsonlite::Value* fname = file.find("name");
    const jsonlite::Value* content = file.find("content");
    if (fname == nullptr || !fname->is_string() || content == nullptr ||
        !content->is_string()) {
      error = "each file needs \"name\" and \"content\" strings";
      return std::nullopt;
    }
    result.files.push_back(core::AppFile{fname->str(), content->str()});
  }
  if (result.files.empty()) {
    error = "inline app has no files";
    return std::nullopt;
  }
  return result;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

ScanServer::ScanServer(ScanService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

ScanServer::~ScanServer() {
  request_stop();
  {
    const std::lock_guard<std::mutex> lock(threads_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
    listen_fd_ = -1;
  }
}

bool ScanServer::listen() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  // A stale socket from a crashed daemon (kill -9 leaves it behind)
  // must not block recovery: remove it before binding.
  ::unlink(options_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  return true;
}

int ScanServer::run() {
  if (listen_fd_ < 0) return 1;
  while (!stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int timeout_ms = static_cast<int>(options_.poll_interval.count());
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    const std::lock_guard<std::mutex> lock(threads_mu_);
    connections_.emplace_back([this, client] { serve_connection(client); });
  }
  {
    const std::lock_guard<std::mutex> lock(threads_mu_);
    for (std::thread& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  return 0;
}

void ScanServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      const std::string response = handle_request(line);
      if (!send_all(fd, response + "\n")) {
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, start);
    // A hostile client streaming an endless unterminated line must not
    // grow the buffer without bound.
    if (buffer.size() > (1u << 20)) {
      send_all(fd, error_response("request line too long") + "\n");
      break;
    }
  }
  ::close(fd);
}

std::string ScanServer::handle_request(const std::string& line) {
  const std::optional<jsonlite::Value> request = jsonlite::parse(line);
  if (!request.has_value() || !request->is_object()) {
    return error_response("request is not a JSON object");
  }
  const jsonlite::Value* op = request->find("op");
  if (op == nullptr || !op->is_string()) {
    return error_response("missing \"op\"");
  }

  // Daemon identity, shared by ping and status: engine version, pid and
  // uptime answer "which build am I talking to, and since when?".
  const auto identity = [this] {
    const double uptime_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      service_.started_at())
            .count();
    return "\"version\": " + strutil::quote(core::kEngineVersion) +
           ", \"pid\": " + std::to_string(static_cast<long long>(::getpid())) +
           ", \"uptime_s\": " + fmt_double(uptime_s);
  };

  if (op->str() == "ping") {
    return "{\"status\": \"ok\", \"pong\": true, " + identity() + "}";
  }

  if (op->str() == "shutdown") {
    request_stop();
    return "{\"status\": \"ok\", \"stopping\": true}";
  }

  if (op->str() == "metrics") {
    std::string body = "# no telemetry attached\n";
    if (telemetry::Telemetry* t = service_.options().telemetry) {
      telemetry::PromOptions prom;
      prom.engine_version = std::string(core::kEngineVersion);
      prom.process_start = service_.started_at();
      body = telemetry::to_prometheus_text(*t, prom);
    }
    return "{\"status\": \"ok\", \"content_type\": "
           "\"text/plain; version=0.0.4\", \"metrics\": " +
           strutil::quote(body) + "}";
  }

  if (op->str() == "top") {
    std::size_t n = 10;
    if (const jsonlite::Value* nv = request->find("n");
        nv != nullptr && nv->is_number() && nv->number() > 0) {
      n = static_cast<std::size_t>(nv->number());
    }
    std::string out = "{\"status\": \"ok\", \"requests\": [";
    bool first = true;
    for (const RequestCost& c : service_.top_requests(n)) {
      if (!first) out += ", ";
      first = false;
      out += "{\"app\": " + strutil::quote(c.app) +
             ", \"trace_id\": " + strutil::quote(c.trace_id) +
             ", \"verdict\": " + strutil::quote(c.verdict) +
             ", \"total_ms\": " + fmt_double(c.total_ms) +
             ", \"parse_ms\": " + fmt_double(c.parse_ms) +
             ", \"interp_ms\": " + fmt_double(c.interp_ms) +
             ", \"solve_ms\": " + fmt_double(c.solve_ms) +
             ", \"solver_calls\": " + std::to_string(c.solver_calls) +
             ", \"cached\": " + (c.from_cache ? "true" : "false") +
             ", \"quarantined\": " + (c.quarantined ? "true" : "false") +
             ", \"top_root\": " + strutil::quote(c.top_root) +
             ", \"top_root_ms\": " + fmt_double(c.top_root_ms) + "}";
    }
    out += "]}";
    return out;
  }

  if (op->str() == "profile") {
    std::size_t n = 10;
    if (const jsonlite::Value* nv = request->find("n");
        nv != nullptr && nv->is_number() && nv->number() > 0) {
      n = static_cast<std::size_t>(nv->number());
    }
    std::string out = "{\"status\": \"ok\", \"profiling\": ";
    out += service_.options().profile ? "true" : "false";
    out += ", \"scans\": [";
    bool first = true;
    for (const RecentProfile& p : service_.recent_profiles(n)) {
      if (!first) out += ", ";
      first = false;
      out += "{\"app\": " + strutil::quote(p.app) +
             ", \"trace_id\": " + strutil::quote(p.trace_id) +
             ", \"verdict\": " + strutil::quote(p.verdict) +
             ", \"profile\": " + profile::to_json(p.profile) + "}";
    }
    out += "]}";
    return out;
  }

  if (op->str() == "status") {
    std::string out = "{\"status\": \"ok\", " + identity() +
                      ", \"queue_depth\": " +
                      std::to_string(service_.queue_depth());
    if (telemetry::Telemetry* t = service_.options().telemetry) {
      out += ", \"counters\": {";
      bool first = true;
      for (const auto& [name, value] : t->metrics().counters()) {
        if (!first) out += ", ";
        first = false;
        out += strutil::quote(name) + ": " + std::to_string(value);
      }
      out += "}, \"gauges\": {";
      first = true;
      for (const auto& [name, value] : t->metrics().gauges()) {
        if (!first) out += ", ";
        first = false;
        out += strutil::quote(name) + ": " + std::to_string(value);
      }
      out += "}";
    }
    out += "}";
    return out;
  }

  if (op->str() == "scan") {
    std::string error;
    std::optional<core::Application> app = request_application(*request, error);
    if (!app.has_value()) return error_response(error);
    const jsonlite::Value* format = request->find("format");
    const bool want_sarif =
        format != nullptr && format->is_string() && format->str() == "sarif";
    std::string trace_id;
    if (const jsonlite::Value* tid = request->find("trace_id");
        tid != nullptr && tid->is_string()) {
      trace_id = tid->str();
    }

    std::future<ScanOutcome> future =
        service_.submit(*std::move(app), std::move(trace_id));
    if (!future.valid()) {
      return "{\"status\": \"overloaded\", \"queue_depth\": " +
             std::to_string(service_.queue_depth()) + "}";
    }
    ScanOutcome outcome = future.get();
    std::string out = "{\"status\": \"ok\", \"app\": " +
                      strutil::quote(outcome.report.app_name) +
                      ", \"trace_id\": " + strutil::quote(outcome.trace_id) +
                      ", \"verdict\": \"" +
                      std::string(core::verdict_slug(outcome.report.verdict)) +
                      "\", \"cached\": " +
                      (outcome.from_cache ? "true" : "false") +
                      ", \"quarantined\": " +
                      (outcome.quarantined ? "true" : "false");
    if (want_sarif) {
      out += ", \"sarif\": " + sarif::to_json(core::to_sarif(outcome.report));
    } else {
      out += ", \"report\": " + outcome.report_json;
    }
    out += "}";
    return out;
  }

  return error_response("unknown op: " + op->str());
}

}  // namespace uchecker::service
