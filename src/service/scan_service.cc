#include "service/scan_service.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/detector/report_io.h"
#include "support/flight_recorder.h"
#include "support/logging.h"
#include "support/strutil.h"
#include "support/telemetry.h"

namespace uchecker::service {
namespace {

namespace fs = std::filesystem;

// Store schemas carry the engine version: upgrading the engine
// cold-starts both caches instead of replaying stale analysis.
std::string schema_for(std::string_view store_name) {
  return std::string(store_name) + "/1 " + std::string(core::kEngineVersion);
}

core::ScanReport service_error_report(std::string app_name,
                                      std::string message) {
  core::ScanReport report;
  report.app_name = std::move(app_name);
  report.verdict = core::Verdict::kAnalysisError;
  report.errors.push_back(
      core::ScanError{"service", "", std::move(message), false});
  return report;
}

// Pulls the cost attribution a report carries (phase_ms, root_costs)
// into the bounded `scanctl top` record for this request.
RequestCost cost_from_report(const core::ScanReport& report) {
  RequestCost cost;
  cost.verdict = std::string(core::verdict_slug(report.verdict));
  const auto phase = [&](const char* name) {
    const auto it = report.phase_ms.find(name);
    return it == report.phase_ms.end() ? 0.0 : it->second;
  };
  cost.parse_ms = phase("parse");
  cost.interp_ms = phase("interp");
  cost.solve_ms = phase("solve");
  cost.solver_calls = report.solver_calls;
  for (const core::RootCost& rc : report.root_costs) {
    const double ms = rc.interp_ms + rc.solve_ms;
    if (ms >= cost.top_root_ms && !rc.pruned) {
      cost.top_root_ms = ms;
      cost.top_root = rc.root;
    }
  }
  return cost;
}

}  // namespace

std::string mint_trace_id(std::string_view hint) {
  static std::atomic<std::uint64_t> sequence{0};
  std::uint64_t h = store::fnv1a64(hint);
  h = store::fnv1a64(store::hex64(static_cast<std::uint64_t>(
                         std::chrono::steady_clock::now()
                             .time_since_epoch()
                             .count())),
                     h);
  h = store::fnv1a64(
      store::hex64(sequence.fetch_add(1, std::memory_order_relaxed)), h);
  return store::hex64(h);
}

ScanService::ScanService(ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_queue == 0) options_.max_queue = 1;
}

ScanService::~ScanService() { stop(); }

void ScanService::count(const char* name, std::uint64_t n) {
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics().counter(name).add(n);
  }
}

void ScanService::set_gauge(const char* name, double value) {
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics().gauge(name).set(value);
  }
}

void ScanService::publish_store_metrics() {
  if (options_.telemetry == nullptr) return;
  const auto mirror = [this](const char* prefix, const store::StoreStats& s) {
    const std::string p(prefix);
    auto& m = options_.telemetry->metrics();
    m.gauge(p + ".hits").set(static_cast<double>(s.hits));
    m.gauge(p + ".misses").set(static_cast<double>(s.misses));
    m.gauge(p + ".corrupt").set(static_cast<double>(s.corrupt));
    m.gauge(p + ".dropped_flushes").set(static_cast<double>(s.dropped_flushes));
    m.gauge(p + ".cold_start").set(s.cold_start ? 1.0 : 0.0);
  };
  mirror("scand.verdict_cache", verdict_store_.stats());
  mirror("scand.solver_cache", solver_store_.stats());
  set_gauge("scand.quarantine.size",
            static_cast<double>(quarantine_store_.size()));
}

bool ScanService::start() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (started_) return false;
    started_ = true;
    stopping_ = false;
  }

  if (!options_.state_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options_.state_dir, ec);  // failure -> open fails
    const std::string dir = options_.state_dir + "/";
    verdict_store_.open(dir + "verdicts.kv", schema_for("uchecker-verdicts"));
    solver_store_.open(dir + "solver.kv", schema_for("uchecker-solver"));
    quarantine_store_.open(dir + "quarantine.kv",
                           schema_for("uchecker-quarantine"));

    // Replay persisted solver outcomes into the shared in-memory cache.
    // A value that passes the record checksum but no longer decodes is
    // counted corrupt and dropped — re-solved on demand, never trusted.
    std::size_t loaded = 0;
    for (const auto& [key, value] : solver_store_.snapshot()) {
      if (auto outcome = core::decode_outcome(value); outcome.has_value()) {
        solver_cache_.preload(key, *std::move(outcome));
        ++loaded;
      } else {
        solver_store_.invalidate(key);
      }
    }
    count("scand.solver_cache.preloaded", loaded);
  }
  publish_store_metrics();
  set_gauge("scand.queue_depth", 0.0);

  started_at_ = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    threads_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
  if (options_.logger != nullptr) {
    options_.logger->info(
        "service_start", {},
        {{"workers", static_cast<std::uint64_t>(options_.workers)},
         {"state_dir", options_.state_dir},
         {"engine", core::kEngineVersion}});
  }
  return true;
}

void ScanService::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // The watchdog is gone, so threads_ can no longer grow; a retired
  // worker's thread still finishes its wedged scan before joining.
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    workers.swap(threads_);
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }

  // SIGTERM drain: persist each worker's flight-recorder window so a
  // post-mortem can see what every worker was doing at shutdown.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < recorders_.size(); ++i) {
      if (recorders_[i]->total_recorded() == 0) continue;
      dump_flight(*recorders_[i], "worker" + std::to_string(i));
    }
  }

  // Final flush: anything solved but not yet drained, then compact the
  // append logs down to their live maps.
  for (auto& [key, outcome] : solver_cache_.drain_dirty()) {
    solver_store_.put(key, core::encode_outcome(outcome));
  }
  verdict_store_.compact();
  solver_store_.compact();
  quarantine_store_.compact();
  publish_store_metrics();
  verdict_store_.close();
  solver_store_.close();
  quarantine_store_.close();
  if (options_.logger != nullptr) {
    options_.logger->info("service_stop");
  }
}

std::future<ScanOutcome> ScanService::submit(core::Application app,
                                             std::string trace_id) {
  auto flight = std::make_shared<InFlight>();
  flight->app_name = app.name;
  flight->key = verdict_key(app, options_.scan);
  flight->trace_id =
      trace_id.empty() ? mint_trace_id(app.name) : std::move(trace_id);
  flight->has_deadline = options_.request_timeout.count() > 0;
  std::future<ScanOutcome> future = flight->promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return {};
    if (queue_.size() >= options_.max_queue) {
      count("scand.overloaded");
      return {};
    }
    queue_.push_back(Request{std::move(app), std::move(flight)});
    set_gauge("scand.queue_depth", static_cast<double>(queue_.size()));
  }
  count("scand.requests");
  cv_.notify_one();
  return future;
}

std::optional<ScanOutcome> ScanService::scan(core::Application app,
                                             std::string trace_id) {
  std::future<ScanOutcome> future =
      submit(std::move(app), std::move(trace_id));
  if (!future.valid()) return std::nullopt;
  return future.get();
}

std::vector<RequestCost> ScanService::top_requests(std::size_t n) const {
  std::vector<RequestCost> out;
  {
    const std::lock_guard<std::mutex> lock(costs_mu_);
    out.assign(recent_costs_.begin(), recent_costs_.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RequestCost& x, const RequestCost& y) {
                     return x.total_ms > y.total_ms;
                   });
  if (out.size() > n) out.resize(n);
  return out;
}

void ScanService::remember_cost(RequestCost cost) {
  if (options_.top_history == 0) return;
  const std::lock_guard<std::mutex> lock(costs_mu_);
  recent_costs_.push_back(std::move(cost));
  while (recent_costs_.size() > options_.top_history) {
    recent_costs_.pop_front();
  }
}

std::vector<RecentProfile> ScanService::recent_profiles(std::size_t n) const {
  std::vector<RecentProfile> out;
  const std::lock_guard<std::mutex> lock(profiles_mu_);
  for (auto it = recent_profiles_.rbegin();
       it != recent_profiles_.rend() && out.size() < n; ++it) {
    out.push_back(*it);
  }
  return out;
}

void ScanService::remember_profile(RecentProfile profile) {
  if (options_.profile_history == 0) return;
  const std::lock_guard<std::mutex> lock(profiles_mu_);
  recent_profiles_.push_back(std::move(profile));
  while (recent_profiles_.size() > options_.profile_history) {
    recent_profiles_.pop_front();
  }
}

void ScanService::dump_flight(const telemetry::FlightRecorder& recorder,
                              const std::string& tag) {
  if (options_.state_dir.empty()) return;
  const std::string path =
      options_.state_dir + "/flightrec-" + tag + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return;
  out << recorder.to_json() << '\n';
}

std::size_t ScanService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::string ScanService::verdict_key(const core::Application& app,
                                     const core::ScanOptions& scan) {
  // Only option fields that can change a non-degraded report are part
  // of the key (budget/deadline overruns mark the report degraded, and
  // degraded reports are never cached).
  std::string opts = "stop=";
  opts += scan.vuln.stop_at_first_finding ? '1' : '0';
  opts += ";admin=";
  opts += scan.locality.model_admin_gating ? '1' : '0';
  opts += ";locality=";
  opts += scan.run_locality ? '1' : '0';
  opts += ";prefilter=";
  opts += scan.prefilter ? '1' : '0';
  opts += ";lint=";
  opts += scan.lint ? '1' : '0';
  opts += ";summaries=";
  opts += scan.summaries ? '1' : '0';
  opts += ";crosscheck=";
  opts += scan.crosscheck ? '1' : '0';
  opts += ";explain=";
  opts += scan.explain ? '1' : '0';
  opts += ";ext=";
  for (const std::string& ext : scan.vuln.executable_extensions) {
    opts += ext;
    opts += ',';
  }

  std::uint64_t h = store::fnv1a64(core::kEngineVersion);
  h = store::fnv1a64(opts, h);
  h = store::fnv1a64(app.name, h);
  // Content identity is order-independent: hash (name, content hash)
  // pairs in sorted-name order.
  std::vector<std::pair<std::string_view, std::uint64_t>> files;
  files.reserve(app.files.size());
  for (const core::AppFile& f : app.files) {
    files.emplace_back(f.name, store::fnv1a64(f.content));
  }
  std::sort(files.begin(), files.end());
  for (const auto& [name, content_hash] : files) {
    h = store::fnv1a64(name, h);
    h = store::fnv1a64(store::hex64(content_hash), h);
  }
  return store::hex64(h);
}

bool ScanService::is_quarantined(const core::Application& app) const {
  return quarantine_store_.contains(verdict_key(app, options_.scan));
}

store::StoreStats ScanService::verdict_store_stats() const {
  return verdict_store_.stats();
}

store::StoreStats ScanService::solver_store_stats() const {
  return solver_store_.stats();
}

void ScanService::worker_loop() {
  // This worker's flight recorder. Owned by recorders_ (never removed),
  // so the watchdog can still dump it after this worker is retired.
  telemetry::FlightRecorder* recorder = nullptr;
  if (options_.flight_recorder_capacity > 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    recorders_.push_back(std::make_unique<telemetry::FlightRecorder>(
        options_.flight_recorder_capacity));
    recorder = recorders_.back().get();
  }

  while (true) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      request = std::move(queue_.front());
      queue_.pop_front();
      if (request.flight->has_deadline) {
        request.flight->deadline_at =
            std::chrono::steady_clock::now() + options_.request_timeout;
      }
      request.flight->recorder = recorder;
      inflight_.push_back(request.flight);
      set_gauge("scand.queue_depth", static_cast<double>(queue_.size()));
      if (recorder != nullptr) {
        recorder->record(telemetry::FlightKind::kQueue,
                         request.flight->app_name, queue_.size());
      }
    }

    process(request, recorder);

    bool retired = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(
          std::remove(inflight_.begin(), inflight_.end(), request.flight),
          inflight_.end());
      retired = request.flight->abandoned.load(std::memory_order_acquire);
    }
    // The watchdog answered for this scan and spawned a replacement
    // worker; this thread bows out rather than doubling the pool.
    if (retired) return;
  }
}

void ScanService::process(Request& request,
                          telemetry::FlightRecorder* recorder) {
  const auto t0 = std::chrono::steady_clock::now();
  InFlight& flight = *request.flight;
  ScanOutcome outcome;
  outcome.trace_id = flight.trace_id;

  if (quarantine_store_.contains(flight.key)) {
    count("scand.quarantine_hits");
    outcome.quarantined = true;
    outcome.report = service_error_report(
        flight.app_name,
        "quarantined: a previous scan of this content exceeded its deadline");
    outcome.report_json = core::to_json(outcome.report);
  } else {
    bool need_scan = true;
    if (auto cached = verdict_store_.get(flight.key); cached.has_value()) {
      if (auto parsed = core::report_from_json(*cached); parsed.has_value()) {
        // Warm replay: the reply bytes are the stored bytes, which are
        // the to_json() of the original scan — byte-identical.
        outcome.report = *std::move(parsed);
        outcome.report_json = *std::move(cached);
        outcome.from_cache = true;
        need_scan = false;
      } else {
        // Checksum-clean but undecodable (schema drift that survived
        // the header check): corrupt, recompute, never replay.
        verdict_store_.invalidate(flight.key);
      }
    }

    if (need_scan) {
      core::ScanOptions scan_options = options_.scan;
      scan_options.query_cache = &solver_cache_;
      scan_options.trace_id = flight.trace_id;
      scan_options.flight = recorder;
      if (options_.profile) scan_options.profile = true;
      const core::Detector detector(scan_options);
      Deadline deadline = flight.has_deadline
                              ? Deadline::after(options_.request_timeout)
                              : Deadline::unlimited();
      deadline.attach(flight.cancel.token());
      outcome.report = detector.scan(request.app, deadline);
      if (outcome.report.profiled) {
        // Strip the profile (the report's only nondeterministic part)
        // into the in-memory ring before rendering: the reply and cache
        // bytes stay byte-identical to an unprofiled scan, so warm
        // replays remain indistinguishable from cold ones.
        RecentProfile recent;
        recent.app = flight.app_name;
        recent.trace_id = flight.trace_id;
        recent.verdict =
            std::string(core::verdict_slug(outcome.report.verdict));
        recent.profile = std::move(outcome.report.profile);
        outcome.report.profile = {};
        outcome.report.profiled = false;
        remember_profile(std::move(recent));
      }
      outcome.report_json = core::to_json(outcome.report);
      // Only clean reports are worth replaying; a degraded one (error,
      // timeout, budget) must be recomputed next time.
      if (!outcome.report.degraded() &&
          outcome.report.verdict != core::Verdict::kAnalysisError) {
        verdict_store_.put(flight.key, outcome.report_json);
      }
      // Incremental solver-cache flush: persist what this scan solved
      // now, so a crash loses at most the scans after the last flush.
      std::size_t flushed = 0;
      for (auto& [key, solver_outcome] : solver_cache_.drain_dirty()) {
        solver_store_.put(key, core::encode_outcome(solver_outcome));
        ++flushed;
      }
      if (flushed > 0) count("scand.solver_cache.flushed", flushed);
    }
  }

  const double total_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  // A cache hit never paid the report's parse/interp/solve time — those
  // belong to the original scan — so only the verdict is attributed.
  RequestCost cost;
  if (outcome.from_cache) {
    cost.verdict = std::string(core::verdict_slug(outcome.report.verdict));
  } else {
    cost = cost_from_report(outcome.report);
  }
  cost.app = flight.app_name;
  cost.trace_id = flight.trace_id;
  cost.total_ms = total_ms;
  cost.from_cache = outcome.from_cache;
  cost.quarantined = outcome.quarantined;

  if (options_.logger != nullptr) {
    options_.logger->info(
        "request_done", flight.trace_id,
        {{"app", flight.app_name},
         {"verdict", cost.verdict},
         {"total_ms", total_ms},
         {"cached", outcome.from_cache},
         {"quarantined", outcome.quarantined},
         {"solver_calls", cost.solver_calls}});
  }

  // Record the cost before fulfilling the promise: a client that sees
  // its scan response must also see the request in `top`.
  remember_cost(std::move(cost));
  if (!flight.replied.exchange(true, std::memory_order_acq_rel)) {
    if (options_.telemetry != nullptr) {
      options_.telemetry->metrics()
          .histogram("scand.request_ms",
                     telemetry::MetricsRegistry::default_latency_buckets_ms())
          .observe(total_ms);
      options_.telemetry->metrics().set_exemplar("scand.request_ms",
                                                 flight.trace_id);
    }
    flight.promise.set_value(std::move(outcome));
  }
  publish_store_metrics();
}

void ScanService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock, options_.watchdog_poll,
                          [this] { return stopping_; });
    if (stopping_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto& flight : inflight_) {
      if (!flight->has_deadline ||
          flight->replied.load(std::memory_order_acquire) ||
          now <= flight->deadline_at + options_.watchdog_grace) {
        continue;
      }
      // A scan is wedged past deadline + grace: cancel it, answer for
      // it, quarantine its content, and replace the worker stuck on it.
      flight->cancel.cancel();
      count("scand.watchdog_cancellations");
      // The quarantine value is a small JSON object naming the trace
      // and the phase the scan was wedged in, and the flight-recorder
      // dump lands alongside it — together they answer "what was it
      // doing when it hung?" long after the daemon moved on.
      std::string wedged;
      if (flight->recorder != nullptr) {
        wedged = flight->recorder->wedged_phase();
        dump_flight(*flight->recorder, flight->key);
      }
      quarantine_store_.put(
          flight->key,
          "{\"reason\": \"watchdog: scan exceeded deadline\", "
          "\"trace_id\": " +
              strutil::quote(flight->trace_id) +
              ", \"wedged_phase\": " + strutil::quote(wedged) + "}");
      count("scand.quarantined");
      if (options_.logger != nullptr) {
        options_.logger->warn("watchdog_cancel", flight->trace_id,
                              {{"app", flight->app_name},
                               {"key", flight->key},
                               {"wedged_phase", wedged}});
      }
      flight->abandoned.store(true, std::memory_order_release);
      if (!flight->replied.exchange(true, std::memory_order_acq_rel)) {
        ScanOutcome outcome;
        outcome.trace_id = flight->trace_id;
        outcome.quarantined = true;
        outcome.report = service_error_report(
            flight->app_name,
            "watchdog: scan cancelled after exceeding its deadline; "
            "content quarantined");
        outcome.report_json = core::to_json(outcome.report);
        flight->promise.set_value(std::move(outcome));
      }
      threads_.emplace_back([this] { worker_loop(); });
    }
  }
}

std::optional<core::Application> load_application(const std::string& root,
                                                  std::string& error,
                                                  std::size_t* unreadable) {
  const auto is_php_file = [](const fs::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".php" || ext == ".module" || ext == ".inc";
  };
  const auto read_file = [](const fs::path& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return false;
    out = buffer.str();
    return true;
  };

  core::Application app;
  app.name = root;
  std::size_t skipped = 0;
  const auto add_file = [&](const fs::path& path, std::string name) {
    std::string content;
    if (read_file(path, content)) {
      app.files.push_back(core::AppFile{std::move(name), std::move(content)});
    } else {
      ++skipped;
    }
  };

  const fs::path root_path(root);
  std::error_code ec;
  if (fs::is_regular_file(root_path, ec)) {
    add_file(root_path, root_path.filename().string());
  } else if (fs::is_directory(root_path, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(root_path, ec)) {
      if (!is_php_file(entry.path())) continue;
      std::error_code sec;
      if (entry.is_regular_file(sec) || fs::is_symlink(entry.path(), sec)) {
        add_file(entry.path(),
                 fs::relative(entry.path(), root_path, ec).string());
      }
    }
  } else {
    error = root + " is not a file or directory";
    return std::nullopt;
  }
  if (unreadable != nullptr) *unreadable = skipped;
  if (app.files.empty()) {
    error = "no readable PHP files found under " + root;
    return std::nullopt;
  }
  return app;
}

}  // namespace uchecker::service
