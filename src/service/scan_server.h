// Unix-domain-socket front end for ScanService (the scand daemon's
// network layer).
//
// Wire protocol: line-delimited JSON, one request object per line, one
// response object per line, over a SOCK_STREAM Unix socket. A client
// may pipeline several requests on one connection.
//
//   {"op": "ping"}                          -> {"status": "ok", "pong": true,
//                                               "version": "...", "pid": N,
//                                               "uptime_s": X}
//   {"op": "status"}                        -> {"status": "ok",
//                                               "version": "...", "pid": N,
//                                               "uptime_s": X,
//                                               "queue_depth": N,
//                                               "counters": {name: N, ...},
//                                               "gauges": {name: X, ...}}
//   {"op": "metrics"}                       -> {"status": "ok",
//                                               "content_type": "text/plain; version=0.0.4",
//                                               "metrics": "<Prometheus text exposition>"}
//   {"op": "top" [, "n": N]}                -> {"status": "ok",
//                                               "requests": [{"app", "trace_id",
//                                                 "verdict", "total_ms", "parse_ms",
//                                                 "interp_ms", "solve_ms",
//                                                 "solver_calls", "cached",
//                                                 "quarantined", "top_root",
//                                                 "top_root_ms"}, ...]}  (most
//                                               expensive first; default n=10)
//   {"op": "profile" [, "n": N]}            -> {"status": "ok",
//                                               "profiling": B,
//                                               "scans": [{"app", "trace_id",
//                                                 "verdict", "profile": {...}},
//                                                 ...]}  (newest first;
//                                               default n=10; the profile
//                                               object is support/profile.h's
//                                               to_json. Empty until the
//                                               daemon runs with --profile.)
//   {"op": "scan", "path": "/php/tree"}     -> {"status": "ok",
//        [, "format": "sarif"]                  "app": "...",
//        [, "trace_id": "..."]                  "trace_id": "...",
//                                               "verdict": "<slug>",
//                                               "cached": B,
//                                               "quarantined": B,
//                                               "report": {...} | "sarif": {...}}
//       A client-supplied trace_id is propagated into every span, log
//       line, metric exemplar and the report; when absent the service
//       mints one — either way the response echoes the ID actually used.
//   {"op": "scan", "app": {"name": "...",   -> as above (sources inline,
//        "files": [{"name","content"},..]}}    nothing read from disk)
//   {"op": "shutdown"}                      -> {"status": "ok",
//                                               "stopping": true}
//
// Degradation responses (all still one JSON line):
//   {"status": "overloaded", "queue_depth": N}   bounded queue is full —
//       retry later; nothing was enqueued.
//   {"status": "error", "message": "..."}        malformed request,
//       unknown op, unreadable path.
//
// The server never trusts the client: any parse failure is answered,
// never crashed on, and a scan request's cost is bounded by the
// service's request_timeout + watchdog.
//
// Shutdown: request_stop() is async-signal-safe (one relaxed atomic
// store), so the daemon's SIGTERM handler calls it directly; run()
// notices within one poll interval, stops accepting, joins connection
// threads, and returns — the caller then drains via ScanService::stop().
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/scan_service.h"

namespace uchecker::service {

struct ServerOptions {
  std::string socket_path;
  // Accept-loop poll interval: the latency bound on noticing a stop
  // request or an exiting connection thread.
  std::chrono::milliseconds poll_interval{200};
};

class ScanServer {
 public:
  ScanServer(ScanService& service, ServerOptions options);
  ~ScanServer();

  ScanServer(const ScanServer&) = delete;
  ScanServer& operator=(const ScanServer&) = delete;

  // Binds and listens on the socket (unlinking a stale one first).
  // False (with errno intact) when the socket cannot be created.
  [[nodiscard]] bool listen();

  // Accept loop; blocks until request_stop() or a shutdown request.
  // Returns 0 on a clean stop, 1 when listen() was never called.
  int run();

  // Safe from signal handlers.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  // One request line -> one response line (no trailing newline).
  // Exposed for tests; run() routes every connection through it.
  [[nodiscard]] std::string handle_request(const std::string& line);

 private:
  void serve_connection(int fd);

  ScanService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex threads_mu_;
  std::vector<std::thread> connections_;
};

}  // namespace uchecker::service
