// Tests for SARIF 2.1.0 export: the golden serialized format (byte
// exact, mirroring telemetry_test's Chrome-trace golden check), the
// jsonlite DOM parser it is validated with, the structural validator's
// positive/negative space, and the ScanReport → SARIF mapping.
#include "support/sarif_export.h"

#include <gtest/gtest.h>

#include "core/detector/detector.h"
#include "core/detector/report_io.h"
#include "support/jsonlite.h"

namespace uchecker {
namespace {

// --- jsonlite DOM ----------------------------------------------------

TEST(JsonliteDom, ParsesScalarsAndContainers) {
  const auto v = jsonlite::parse(
      R"({"a": 1.5, "b": "text", "c": [true, false, null], "d": {"e": -2}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->find("a")->number(), 1.5);
  EXPECT_EQ(v->find("b")->str(), "text");
  const jsonlite::Value* c = v->find("c");
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->size(), 3u);
  EXPECT_TRUE(c->at(0)->boolean());
  EXPECT_FALSE(c->at(1)->boolean());
  EXPECT_TRUE(c->at(2)->is_null());
  EXPECT_DOUBLE_EQ(v->find("d")->find("e")->number(), -2.0);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonliteDom, DecodesStringEscapes) {
  const auto v = jsonlite::parse(R"(["a\"b", "tab\there", "\u0041", "\u00e9"])");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at(0)->str(), "a\"b");
  EXPECT_EQ(v->at(1)->str(), "tab\there");
  EXPECT_EQ(v->at(2)->str(), "A");
  EXPECT_EQ(v->at(3)->str(), "\xc3\xa9");  // é as UTF-8
}

TEST(JsonliteDom, DecodesSurrogatePairs) {
  const auto v = jsonlite::parse(R"("\ud83d\ude00")");  // 😀 U+1F600
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->str(), "\xf0\x9f\x98\x80");
  // A lone surrogate is a syntax error.
  EXPECT_FALSE(jsonlite::parse(R"("\ud83d")").has_value());
}

TEST(JsonliteDom, RejectsWhatValidRejects) {
  for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "tru", "01", "\"\\q\""}) {
    EXPECT_FALSE(jsonlite::parse(bad).has_value()) << bad;
    EXPECT_FALSE(jsonlite::valid(bad)) << bad;
  }
}

// --- golden serialization -------------------------------------------

TEST(SarifExport, GoldenFormat) {
  sarif::Log log;
  log.tool.name = "uchecker";
  log.tool.version = "1.0.0";
  log.rules.push_back({"UC001", "UnrestrictedFileUpload", "Upload check."});
  sarif::Result result;
  result.rule_id = "UC001";
  result.level = "error";
  result.message = "tainted upload reaches move_uploaded_file().";
  result.location.uri = "upload.php";
  result.location.line = 16;
  result.fingerprints.emplace_back("uchecker/v1", "9a33afae0a74fdaf");
  sarif::CodeFlow flow;
  flow.locations.push_back({"upload.php", 5, "symbol: s_files_f_tmp"});
  flow.locations.push_back({"upload.php", 16, "sink: move_uploaded_file()"});
  result.code_flows.push_back(flow);
  log.results.push_back(result);

  const std::string expected =
      "{\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\", "
      "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": {\"name\": "
      "\"uchecker\", \"version\": \"1.0.0\", \"rules\": [{\"id\": \"UC001\", "
      "\"name\": \"UnrestrictedFileUpload\", \"shortDescription\": {\"text\": "
      "\"Upload check.\"}}]}}, \"results\": [{\"ruleId\": \"UC001\", "
      "\"level\": \"error\", \"message\": {\"text\": \"tainted upload "
      "reaches move_uploaded_file().\"}, \"locations\": "
      "[{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
      "\"upload.php\"}, \"region\": {\"startLine\": 16}}}], \"codeFlows\": "
      "[{\"threadFlows\": [{\"locations\": [{\"location\": "
      "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
      "\"upload.php\"}, \"region\": {\"startLine\": 5}}, \"message\": "
      "{\"text\": \"symbol: s_files_f_tmp\"}}}, {\"location\": "
      "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
      "\"upload.php\"}, \"region\": {\"startLine\": 16}}, \"message\": "
      "{\"text\": \"sink: move_uploaded_file()\"}}}]}]}], "
      "\"partialFingerprints\": {\"uchecker/v1\": \"9a33afae0a74fdaf\"}}]}]}";
  EXPECT_EQ(sarif::to_json(log), expected);

  std::string error;
  EXPECT_TRUE(sarif::structurally_valid(expected, &error)) << error;
}

// --- structural validator -------------------------------------------

sarif::Log minimal_log() {
  sarif::Log log;
  log.tool.name = "uchecker";
  log.rules.push_back({"UC001", "Rule", "desc"});
  sarif::Result result;
  result.rule_id = "UC001";
  result.message = "m";
  result.location.uri = "a.php";
  result.location.line = 1;
  log.results.push_back(result);
  return log;
}

TEST(SarifValidator, AcceptsEmittedLogs) {
  std::string error;
  EXPECT_TRUE(sarif::structurally_valid(sarif::to_json(minimal_log()), &error))
      << error;
  // Empty results are fine too (clean scan).
  sarif::Log clean = minimal_log();
  clean.results.clear();
  EXPECT_TRUE(sarif::structurally_valid(sarif::to_json(clean), &error))
      << error;
}

TEST(SarifValidator, RejectsStructuralBreaks) {
  std::string error;
  EXPECT_FALSE(sarif::structurally_valid("not json", &error));
  EXPECT_EQ(error, "not valid JSON");
  EXPECT_FALSE(sarif::structurally_valid("{\"version\": \"2.0.0\"}", &error));
  EXPECT_NE(error.find("2.1.0"), std::string::npos);
  EXPECT_FALSE(sarif::structurally_valid(
      "{\"version\": \"2.1.0\", \"runs\": []}", &error));
  EXPECT_NE(error.find("runs"), std::string::npos);

  // An undeclared ruleId must be rejected.
  const std::string undeclared =
      "{\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": {\"name\": "
      "\"t\", \"rules\": []}}, \"results\": [{\"ruleId\": \"UC999\", "
      "\"message\": {\"text\": \"m\"}, \"locations\": "
      "[{\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
      "\"a\"}}}]}]}]}";
  EXPECT_FALSE(sarif::structurally_valid(undeclared, &error));
  EXPECT_NE(error.find("UC999"), std::string::npos);

  // startLine of 0 violates SARIF's 1-based regions.
  const std::string zero_line =
      "{\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": {\"name\": "
      "\"t\", \"rules\": [{\"id\": \"R\"}]}}, \"results\": [{\"ruleId\": "
      "\"R\", \"message\": {\"text\": \"m\"}, \"locations\": "
      "[{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"a\"}, "
      "\"region\": {\"startLine\": 0}}}]}]}]}";
  EXPECT_FALSE(sarif::structurally_valid(zero_line, &error));
  EXPECT_NE(error.find("startLine"), std::string::npos);

  // A bad level string.
  sarif::Log log = minimal_log();
  log.results[0].level = "fatal";
  EXPECT_FALSE(sarif::structurally_valid(sarif::to_json(log), &error));
  EXPECT_NE(error.find("level"), std::string::npos);
}

// --- ScanReport mapping ---------------------------------------------

core::Application one_file_app(const std::string& php) {
  core::Application app;
  app.name = "sarif-app";
  app.files.push_back(core::AppFile{"index.php", "<?php\n" + php});
  return app;
}

TEST(SarifMapping, FindingBecomesUC001WithCodeFlow) {
  core::ScanOptions options;
  options.explain = true;
  core::Detector detector(options);
  const core::ScanReport report = detector.scan(one_file_app(
      "move_uploaded_file($_FILES['f']['tmp_name'], "
      "'/w/' . $_FILES['f']['name']);"));
  ASSERT_TRUE(report.vulnerable());

  const sarif::Log log = core::to_sarif(report);
  std::string error;
  ASSERT_TRUE(sarif::structurally_valid(sarif::to_json(log), &error)) << error;
  ASSERT_FALSE(log.results.empty());
  const sarif::Result& r = log.results[0];
  EXPECT_EQ(r.rule_id, "UC001");
  EXPECT_EQ(r.level, "error");
  EXPECT_EQ(r.location.uri, "index.php");
  EXPECT_GT(r.location.line, 0u);
  ASSERT_EQ(r.fingerprints.size(), 1u);
  EXPECT_EQ(r.fingerprints[0].first, "uchecker/v1");
  EXPECT_EQ(r.fingerprints[0].second, report.findings[0].fingerprint);
  // --explain provenance became a source→sink codeFlow ending at the sink.
  ASSERT_FALSE(r.code_flows.empty());
  ASSERT_GE(r.code_flows[0].locations.size(), 2u);
  EXPECT_NE(r.code_flows[0].locations.back().message.find(
                "move_uploaded_file"),
            std::string::npos);
  // The attack reconstruction is part of the result message.
  EXPECT_NE(r.message.find("payload.php"), std::string::npos);
}

TEST(SarifMapping, LintSeverityMapsToSarifLevel) {
  core::ScanReport report;
  report.app_name = "lints";
  report.lints.push_back({"UC101", core::staticpass::Severity::kError,
                          "a.php:3", "unrestricted upload", "evidence line"});
  report.lints.push_back({"UC103", core::staticpass::Severity::kWarning,
                          "a.php:7", "case-sensitive compare", ""});
  report.lints.push_back({"UC106", core::staticpass::Severity::kInfo,
                          "a.php:9", "raw client filename", ""});
  const sarif::Log log = core::to_sarif(report);
  ASSERT_EQ(log.results.size(), 3u);
  EXPECT_EQ(log.results[0].rule_id, "UC101");
  EXPECT_EQ(log.results[0].level, "error");
  EXPECT_EQ(log.results[0].location.uri, "a.php");
  EXPECT_EQ(log.results[0].location.line, 3u);
  EXPECT_EQ(log.results[1].level, "warning");
  EXPECT_EQ(log.results[2].level, "note");
  std::string error;
  EXPECT_TRUE(sarif::structurally_valid(sarif::to_json(log), &error)) << error;
}

TEST(SarifMapping, LocationSplitterHandlesFindingsAndLints) {
  // Findings render "file:line:col", lints "file:line"; both must land
  // on the right line. Exercised through the lint path (public surface).
  core::ScanReport report;
  report.app_name = "locs";
  report.lints.push_back({"UC101", core::staticpass::Severity::kError,
                          "dir/upload.php:12", "m", ""});
  report.lints.push_back({"UC102", core::staticpass::Severity::kWarning,
                          "no-line-here", "m", ""});
  const sarif::Log log = core::to_sarif(report);
  EXPECT_EQ(log.results[0].location.uri, "dir/upload.php");
  EXPECT_EQ(log.results[0].location.line, 12u);
  // Unparsable location keeps the text as uri, region suppressed.
  EXPECT_EQ(log.results[1].location.uri, "no-line-here");
  EXPECT_EQ(log.results[1].location.line, 0u);
}

}  // namespace
}  // namespace uchecker
