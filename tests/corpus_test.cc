// Integration tests over the reconstructed Table III corpus: structure
// invariants, and — the headline reproduction — per-application verdicts
// matching the paper for all 44 apps, plus the §IV-C baseline comparison.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/rips.h"
#include "baselines/wap.h"
#include "core/detector/detector.h"
#include "corpus/corpus.h"
#include "phpparse/parser.h"

namespace uchecker::corpus {
namespace {

using core::Detector;
using core::ScanReport;
using core::Verdict;

const std::vector<CorpusEntry>& corpus() {
  static const auto* entries = new std::vector<CorpusEntry>(full_corpus());
  return *entries;
}

// Scan each app once; reports are shared across tests.
const std::map<std::string, ScanReport>& reports() {
  static const auto* cached = [] {
    auto* m = new std::map<std::string, ScanReport>();
    Detector detector;
    for (const CorpusEntry& entry : corpus()) {
      m->emplace(entry.app.name, detector.scan(entry.app));
    }
    return m;
  }();
  return *cached;
}

TEST(CorpusStructure, CategorySizesMatchPaper) {
  EXPECT_EQ(known_vulnerable().size(), 13u);
  EXPECT_EQ(benign().size(), 28u);
  EXPECT_EQ(new_vulnerable().size(), 3u);
  EXPECT_EQ(corpus().size(), 44u);
}

TEST(CorpusStructure, GroundTruthLabels) {
  int vulnerable = 0;
  int expected_flags = 0;
  for (const CorpusEntry& e : corpus()) {
    vulnerable += e.ground_truth_vulnerable;
    expected_flags += e.paper_flagged_by_uchecker;
  }
  EXPECT_EQ(vulnerable, 16);       // 13 known + 3 new
  EXPECT_EQ(expected_flags, 17);   // 15 TP + 2 FP
}

TEST(CorpusStructure, AllAppsParseCleanly) {
  for (const CorpusEntry& entry : corpus()) {
    SourceManager sm;
    DiagnosticSink diags;
    for (const core::AppFile& f : entry.app.files) {
      const FileId id = sm.add_file(f.name, f.content);
      Arena arena;
      (void)phpparse::parse_php(*sm.file(id), diags, arena);
    }
    EXPECT_EQ(diags.error_count(), 0u) << entry.app.name << "\n"
                                       << diags.render(sm);
  }
}

TEST(CorpusStructure, LocTracksPaperColumn) {
  for (const CorpusEntry& entry : corpus()) {
    if (entry.paper.loc == 0) continue;  // unnamed benign rows
    const ScanReport& report = reports().at(entry.app.name);
    const double ratio = static_cast<double>(report.total_loc) /
                         static_cast<double>(entry.paper.loc);
    EXPECT_GT(ratio, 0.85) << entry.app.name;
    EXPECT_LT(ratio, 1.15) << entry.app.name;
  }
}

// --- the headline reproduction (Table III verdict column) ---------------------

class CorpusVerdict : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CorpusVerdict, MatchesPaperColumn) {
  const CorpusEntry& entry = corpus().at(GetParam());
  const ScanReport& report = reports().at(entry.app.name);
  const bool flagged = report.verdict == Verdict::kVulnerable;
  EXPECT_EQ(flagged, entry.paper_flagged_by_uchecker)
      << entry.app.name << ": verdict " << verdict_name(report.verdict);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CorpusVerdict, ::testing::Range<std::size_t>(0, 44),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = corpus().at(info.param).app.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(CorpusDetection, AggregateMatchesPaper) {
  int tp = 0, fn = 0, fp = 0, tn = 0;
  for (const CorpusEntry& entry : corpus()) {
    const bool flagged =
        reports().at(entry.app.name).verdict == Verdict::kVulnerable;
    if (entry.ground_truth_vulnerable) {
      flagged ? ++tp : ++fn;
    } else {
      flagged ? ++fp : ++tn;
    }
  }
  EXPECT_EQ(tp, 15);  // 12/13 known + 3/3 new
  EXPECT_EQ(fn, 1);   // Cimy User Extra Fields (budget exhaustion)
  EXPECT_EQ(fp, 2);   // the two admin-gated plugins
  EXPECT_EQ(tn, 26);
}

TEST(CorpusDetection, CimyFalseNegativeIsBudgetExhaustion) {
  const ScanReport& report = reports().at("Cimy User Extra Fields 2.3.8");
  EXPECT_EQ(report.verdict, Verdict::kAnalysisIncomplete);
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_GT(report.paths, 100'000u);  // the paper reports 248832 paths
}

TEST(CorpusDetection, AvatarUploaderPathCountExact) {
  // Table III: 9216 paths (2^10 * 9).
  EXPECT_EQ(reports().at("Avatar Uploader 6.x-1.2").paths, 9216u);
}

TEST(CorpusDetection, ObjectSharingShapeHolds) {
  // Paper §IV-A: "each path has less than 100 objects on average".
  for (const CorpusEntry& entry : corpus()) {
    const ScanReport& report = reports().at(entry.app.name);
    if (report.paths == 0) continue;
    EXPECT_LT(report.objects_per_path, 100.0) << entry.app.name;
  }
}

TEST(CorpusDetection, LocalityReductionShapeHolds) {
  // Paper: locality excludes 67%..99.7% of each app's code.
  for (const CorpusEntry& entry : corpus()) {
    const ScanReport& report = reports().at(entry.app.name);
    if (report.roots == 0) continue;
    EXPECT_LT(report.analyzed_percent, 55.0) << entry.app.name;
  }
}

TEST(CorpusDetection, FindingsCiteRealSourceLines) {
  for (const CorpusEntry& entry : corpus()) {
    const ScanReport& report = reports().at(entry.app.name);
    for (const core::Finding& f : report.findings) {
      EXPECT_NE(f.source_line.find(f.sink_name), std::string::npos)
          << entry.app.name << " @ " << f.location;
    }
  }
}

// --- §IV-C comparison -----------------------------------------------------------

TEST(CorpusComparison, RipsAndWapAggregatesMatchPaper) {
  baselines::RipsScanner rips;
  baselines::WapScanner wap;
  int rips_det = 0, rips_fp = 0, wap_det = 0, wap_fp = 0;
  for (const CorpusEntry& entry : corpus()) {
    const bool r = rips.scan(entry.app).flagged;
    const bool w = wap.scan(entry.app).flagged;
    if (entry.ground_truth_vulnerable) {
      rips_det += r;
      wap_det += w;
    } else {
      rips_fp += r;
      wap_fp += w;
    }
  }
  EXPECT_EQ(rips_det, 15);  // paper: 15/16
  EXPECT_EQ(rips_fp, 27);   // paper: 27/28
  EXPECT_EQ(wap_det, 4);    // paper: 4/16
  EXPECT_EQ(wap_fp, 1);     // paper: 1/28
}

TEST(CorpusComparison, RipsMissesWooCommerceCustomProfilePicture) {
  baselines::RipsScanner rips;
  for (const CorpusEntry& entry : corpus()) {
    if (entry.app.name == "WooCommerce Custom Profile Picture 1.0") {
      EXPECT_FALSE(rips.scan(entry.app).flagged);
      return;
    }
  }
  FAIL() << "app not found";
}

// --- §VI extension: admin-gating removes exactly the two FPs --------------------

TEST(CorpusExtension, AdminGatingRemovesBothFalsePositives) {
  core::ScanOptions options;
  options.locality.model_admin_gating = true;
  Detector gated(options);
  int fp = 0, detected = 0;
  for (const CorpusEntry& entry : corpus()) {
    const bool flagged = gated.scan(entry.app).verdict == Verdict::kVulnerable;
    if (entry.ground_truth_vulnerable) {
      detected += flagged;
    } else {
      fp += flagged;
    }
  }
  EXPECT_EQ(fp, 0);
  EXPECT_EQ(detected, 15);
}

// --- PR9 extension: helper-chain suite (inter-procedural summaries) -----------

TEST(CorpusExtension, HelperSinkSuiteVerdictsMatchGroundTruth) {
  // These apps persist uploads through user-defined helpers (copy/rename
  // sinks reached inter-procedurally); they are deliberately outside the
  // pinned Table III corpus. Verdicts must match ground truth both with
  // and without summaries — the summary layer only changes pruning.
  for (const bool summaries : {true, false}) {
    core::ScanOptions options;
    options.summaries = summaries;
    Detector detector(options);
    for (const CorpusEntry& entry : helper_sink_suite()) {
      const ScanReport report = detector.scan(entry.app);
      EXPECT_EQ(report.verdict == Verdict::kVulnerable,
                entry.ground_truth_vulnerable)
          << entry.app.name << " (summaries " << (summaries ? "on" : "off")
          << "): verdict " << verdict_name(report.verdict);
    }
  }
}

TEST(CorpusExtension, HelperSuiteBenignPrunesOnlyViaSummaries) {
  const std::vector<CorpusEntry> suite = helper_sink_suite();
  const auto benign_it =
      std::find_if(suite.begin(), suite.end(), [](const CorpusEntry& e) {
        return !e.ground_truth_vulnerable;
      });
  ASSERT_NE(benign_it, suite.end());
  const ScanReport with = Detector().scan(benign_it->app);
  EXPECT_EQ(with.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(with.summary_pruned_roots, 1u) << "the benign helper app's root "
      "should be prunable only by summary instantiation";
  core::ScanOptions off;
  off.summaries = false;
  const ScanReport without = Detector(off).scan(benign_it->app);
  EXPECT_EQ(without.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(without.summary_pruned_roots, 0u);
  EXPECT_GT(without.paths, 0u) << "without summaries the root must fall "
      "through to symbolic execution";
}

TEST(CorpusExtension, HelperSuiteCrosscheckAgreesEverywhere) {
  core::ScanOptions options;
  options.crosscheck = true;
  Detector detector(options);
  for (const CorpusEntry& entry : helper_sink_suite()) {
    const ScanReport report = detector.scan(entry.app);
    EXPECT_NE(report.verdict, Verdict::kAnalysisDisagreement)
        << entry.app.name;
    EXPECT_TRUE(report.disagreements.empty()) << entry.app.name;
  }
}

}  // namespace
}  // namespace uchecker::corpus
