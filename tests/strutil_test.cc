#include "support/strutil.h"

#include <gtest/gtest.h>

namespace uchecker::strutil {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t\nabc\r\n"), "abc");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Trim, PreservesInnerWhitespace) { EXPECT_EQ(trim(" a b "), "a b"); }

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("ABC"), "abc");
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
}

TEST(ToUpper, Basic) { EXPECT_EQ(to_upper("abC"), "ABC"); }

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("Move_Uploaded_File", "move_uploaded_file"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "abcd"));
}

TEST(StartsEndsWith, CaseInsensitive) {
  EXPECT_TRUE(starts_with_i("FooBar", "foo"));
  EXPECT_FALSE(starts_with_i("FooBar", "bar"));
  EXPECT_TRUE(ends_with_i("upload.PHP", ".php"));
  EXPECT_FALSE(ends_with_i("upload.png", ".php"));
  EXPECT_FALSE(ends_with_i("hp", ".php"));
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, Empty) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(replace_all("a.b.c", ".", "/"), "a/b/c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
}

TEST(ReplaceAll, EmptyPattern) { EXPECT_EQ(replace_all("abc", "", "y"), "abc"); }

TEST(ParseInt, Valid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("+8"), 8);
  EXPECT_EQ(parse_int(" 99 "), 99);
}

TEST(ParseInt, Invalid) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12a").has_value());
  EXPECT_FALSE(parse_int("a12").has_value());
  EXPECT_FALSE(parse_int("-").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(PhpIntval, LeadingNumericPrefix) {
  EXPECT_EQ(php_intval("42abc"), 42);
  EXPECT_EQ(php_intval("abc"), 0);
  EXPECT_EQ(php_intval("-7xyz"), -7);
  EXPECT_EQ(php_intval(""), 0);
  EXPECT_EQ(php_intval("  13 "), 13);
}

TEST(FileExtension, Basic) {
  EXPECT_EQ(file_extension("a/b/c.php"), "php");
  EXPECT_EQ(file_extension("c.tar.gz"), "gz");
  EXPECT_EQ(file_extension("noext"), "");
  EXPECT_EQ(file_extension("dir.d/noext"), "");
  EXPECT_EQ(file_extension("trailing."), "");
}

TEST(PathBasename, PhpSemantics) {
  EXPECT_EQ(path_basename("/var/www/upload.php"), "upload.php");
  EXPECT_EQ(path_basename("upload.php"), "upload.php");
  EXPECT_EQ(path_basename("/var/www/"), "www");
  EXPECT_EQ(path_basename("c:\\temp\\x.txt"), "x.txt");
}

TEST(Quote, EscapesSpecials) {
  EXPECT_EQ(quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(quote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(quote(""), "\"\"");
}

}  // namespace
}  // namespace uchecker::strutil
