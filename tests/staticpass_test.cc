// Tests for the pre-symbolic static pass (core/staticpass): one
// positive + negative case per lint rule, the pruning soundness contract
// on hand-written traps, and corpus-level acceptance properties
// (prefilter on/off equivalence, crosscheck oracle, benign prune rate).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/detector/detector.h"
#include "core/staticpass/staticpass.h"
#include "corpus/corpus.h"

namespace uchecker {
namespace {

using namespace core;  // NOLINT

ScanReport scan_snippet(const std::string& php, ScanOptions options = {}) {
  Application app;
  app.name = "snippet";
  app.files.push_back(AppFile{"snippet.php", php});
  return Detector(std::move(options)).scan(app);
}

bool has_lint(const ScanReport& report, const std::string& rule) {
  return std::any_of(report.lints.begin(), report.lints.end(),
                     [&rule](const staticpass::LintFinding& l) {
                       return l.rule == rule;
                     });
}

TEST(Severity, NamesRoundTrip) {
  using staticpass::Severity;
  for (Severity s :
       {Severity::kInfo, Severity::kWarning, Severity::kError}) {
    const auto parsed = staticpass::parse_severity(staticpass::severity_name(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(staticpass::parse_severity("fatal").has_value());
}

// ---------------------------------------------------------------------------
// Pruning decisions.

TEST(StaticPass, WhitelistGuardPrunes) {
  const ScanReport report = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
$allowed = array('jpg', 'png', 'gif');
if (!in_array($ext, $allowed)) { die('bad type'); }
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
)");
  EXPECT_EQ(report.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(report.pruned_roots, 1u);
  // The clean idiom produces no lints at all.
  EXPECT_FALSE(has_lint(report, "UC101"));
  EXPECT_FALSE(has_lint(report, "UC102"));
  EXPECT_FALSE(has_lint(report, "UC103"));
  EXPECT_FALSE(has_lint(report, "UC106"));
  // And pruning skipped the symbolic engine entirely.
  EXPECT_EQ(report.paths, 0u);
  EXPECT_EQ(report.solver_calls, 0u);
}

TEST(StaticPass, SwitchWhitelistPrunes) {
  const ScanReport report = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
switch ($ext) {
  case 'jpg':
  case 'png':
    move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
    break;
  default:
    die('rejected');
}
)");
  EXPECT_EQ(report.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(report.pruned_roots, 1u);
}

TEST(StaticPass, UntaintedSourcePrunes) {
  const ScanReport report = scan_snippet(R"(<?php
if (isset($_FILES['f'])) {
  file_put_contents('uploads/audit.log', 'upload received');
}
)");
  EXPECT_EQ(report.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(report.pruned_roots, 1u);
}

TEST(StaticPass, ServerGeneratedNamePrunes) {
  const ScanReport report = scan_snippet(R"(<?php
$target = 'uploads/' . md5($_FILES['f']['name']) . '.dat';
move_uploaded_file($_FILES['f']['tmp_name'], $target);
)");
  EXPECT_EQ(report.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(report.pruned_roots, 1u);
}

TEST(StaticPass, UnguardedRootIsNotPruned) {
  const ScanReport report = scan_snippet(R"(<?php
move_uploaded_file($_FILES['f']['tmp_name'],
                   'uploads/' . $_FILES['f']['name']);
)");
  EXPECT_EQ(report.verdict, Verdict::kVulnerable);
  EXPECT_EQ(report.pruned_roots, 0u);
}

TEST(StaticPass, ReassignmentAfterGuardBlocksPruning) {
  // Flow-insensitive joins must degrade a variable that is ever rebound
  // to something worse: the guard checks $name's extension but the
  // destination uses the raw $_POST override.
  const ScanReport report = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
if (!in_array($ext, array('jpg', 'png'))) { die('bad'); }
$name = $_POST['override'];
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
)");
  EXPECT_EQ(report.pruned_roots, 0u);
}

TEST(StaticPass, HelperCallReachingSinkBailsOut) {
  // The root's own body looks clean, but it calls a helper that reaches
  // a sink; the pass must keep the root on the symbolic path.
  const ScanReport report = scan_snippet(R"(<?php
function store_upload($tmp, $dst) {
  move_uploaded_file($tmp, $dst);
}
store_upload($_FILES['f']['tmp_name'], 'uploads/' . $_FILES['f']['name']);
)");
  EXPECT_EQ(report.verdict, Verdict::kVulnerable);
  EXPECT_EQ(report.pruned_roots, 0u);
}

// ---------------------------------------------------------------------------
// Lint rules: positive and negative cases.

TEST(Lints, UC101UnrestrictedUpload) {
  const ScanReport positive = scan_snippet(R"(<?php
move_uploaded_file($_FILES['f']['tmp_name'],
                   'uploads/' . $_FILES['f']['name']);
)");
  EXPECT_TRUE(has_lint(positive, "UC101"));
  for (const staticpass::LintFinding& l : positive.lints) {
    if (l.rule != "UC101") continue;
    EXPECT_EQ(l.severity, staticpass::Severity::kError);
    EXPECT_NE(l.location.find("snippet.php"), std::string::npos);
    EXPECT_NE(l.evidence.find("move_uploaded_file"), std::string::npos);
  }

  const ScanReport negative = scan_snippet(R"(<?php
$ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
if (!in_array($ext, array('jpg'))) { die('no'); }
move_uploaded_file($_FILES['f']['tmp_name'],
                   'uploads/' . basename($_FILES['f']['name']));
)");
  EXPECT_FALSE(has_lint(negative, "UC101"));
}

TEST(Lints, UC102ExtensionBlacklist) {
  const ScanReport positive = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
if ($ext == 'php') { die('blocked'); }
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
)");
  EXPECT_TRUE(has_lint(positive, "UC102"));
  // A deny-list is not a proof: the root stays on the symbolic path and
  // the engine finds the php5 bypass.
  EXPECT_EQ(positive.pruned_roots, 0u);
  EXPECT_EQ(positive.verdict, Verdict::kVulnerable);

  const ScanReport negative = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
if (!in_array($ext, array('jpg'))) { die('no'); }
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
)");
  EXPECT_FALSE(has_lint(negative, "UC102"));
}

TEST(Lints, UC103CaseSensitiveCompare) {
  const ScanReport positive = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$ext = pathinfo($name, PATHINFO_EXTENSION);
if (!in_array($ext, array('jpg', 'png'))) { die('no'); }
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
)");
  EXPECT_TRUE(has_lint(positive, "UC103"));
  // Case-sensitive whitelists are still sound (stricter), so the root
  // is pruned even though the lint fires.
  EXPECT_EQ(positive.pruned_roots, 1u);
  EXPECT_EQ(positive.verdict, Verdict::kNotVulnerable);

  const ScanReport negative = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
if (!in_array($ext, array('jpg', 'png'))) { die('no'); }
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
)");
  EXPECT_FALSE(has_lint(negative, "UC103"));
}

TEST(Lints, UC104DoubleExtensionSplit) {
  const ScanReport positive = scan_snippet(R"(<?php
$name = $_FILES['f']['name'];
$parts = explode('.', $name);
$ext = $parts[1];
if ($ext != 'php') {
  move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
}
)");
  EXPECT_TRUE(has_lint(positive, "UC104"));
  EXPECT_EQ(positive.pruned_roots, 0u);

  // end(explode(...)) takes the *last* segment: correct, no lint.
  const ScanReport negative = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$parts = explode('.', $name);
$ext = strtolower(end($parts));
if (!in_array($ext, array('jpg', 'png'))) { die('no'); }
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
)");
  EXPECT_FALSE(has_lint(negative, "UC104"));
  EXPECT_EQ(negative.pruned_roots, 1u);
}

TEST(Lints, UC105ForcedExecutableDest) {
  // The wp_demo_buddy trap: a strict-looking guard on the archive
  // extension, but the destination appends a constant '.php'. The guard
  // is irrelevant; the pass must flag it and must NOT prune.
  const ScanReport positive = scan_snippet(R"(<?php
$info = pathinfo($_FILES['pkg']['name']);
$ext = strtolower($info['extension']);
if ($ext !== 'zip') { die('only zip archives'); }
$newname = time() . '_' . $info['basename'] . '.php';
move_uploaded_file($_FILES['pkg']['tmp_name'], 'uploads/' . $newname);
)");
  EXPECT_TRUE(has_lint(positive, "UC105"));
  EXPECT_EQ(positive.pruned_roots, 0u);
  EXPECT_EQ(positive.verdict, Verdict::kVulnerable);

  const ScanReport negative = scan_snippet(R"(<?php
$newname = time() . '_upload.txt';
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $newname);
)");
  EXPECT_FALSE(has_lint(negative, "UC105"));
  EXPECT_EQ(negative.pruned_roots, 1u);
}

TEST(Lints, UC106RawClientFilename) {
  const ScanReport positive = scan_snippet(R"(<?php
$ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
if (!in_array($ext, array('jpg'))) { die('no'); }
move_uploaded_file($_FILES['f']['tmp_name'],
                   'uploads/' . $_FILES['f']['name']);
)");
  EXPECT_TRUE(has_lint(positive, "UC106"));
  for (const staticpass::LintFinding& l : positive.lints) {
    if (l.rule == "UC106") {
      EXPECT_EQ(l.severity, staticpass::Severity::kInfo);
    }
  }

  const ScanReport negative = scan_snippet(R"(<?php
$ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
if (!in_array($ext, array('jpg'))) { die('no'); }
move_uploaded_file($_FILES['f']['tmp_name'],
                   'uploads/' . basename($_FILES['f']['name']));
)");
  EXPECT_FALSE(has_lint(negative, "UC106"));
}

TEST(Lints, UC107HelperChainTaint) {
  // The root has no lexical sink: the taint reaches move_uploaded_file
  // only through the helper. The summary layer instantiates the helper
  // at the call site, finds the sink unprovable, names the chain, and
  // keeps the root on the symbolic path — which detects it.
  const ScanReport positive = scan_snippet(R"(<?php
function persist($tmp, $name) {
    move_uploaded_file($tmp, 'uploads/' . $name);
}
$f = $_FILES['f'];
persist($f['tmp_name'], $f['name']);
)");
  EXPECT_TRUE(has_lint(positive, "UC107"));
  for (const staticpass::LintFinding& l : positive.lints) {
    if (l.rule == "UC107") {
      EXPECT_EQ(l.severity, staticpass::Severity::kError);
      EXPECT_NE(l.message.find("persist"), std::string::npos);
    }
  }
  EXPECT_EQ(positive.pruned_roots, 0u);
  EXPECT_EQ(positive.verdict, Verdict::kVulnerable);

  // A helper that validates internally is proven safe at the call site:
  // no lint, and the root prunes via the summary.
  const ScanReport negative = scan_snippet(R"(<?php
function persist($tmp, $name) {
    $ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
    if (!in_array($ext, array('jpg', 'png'))) { return false; }
    return move_uploaded_file($tmp, 'uploads/' . basename($name));
}
$f = $_FILES['f'];
persist($f['tmp_name'], $f['name']);
)");
  EXPECT_FALSE(has_lint(negative, "UC107"));
  EXPECT_EQ(negative.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(negative.pruned_roots, 1u);
  EXPECT_EQ(negative.summary_pruned_roots, 1u);
}

TEST(Lints, UC108EscapedCallSites) {
  // Each snippet keeps a (benign) lexical sink so the locality pass
  // creates an analysis root at all — roots exist only where a sink is
  // reachable; the escaped call is what UC108 must surface.
  const ScanReport dynamic = scan_snippet(R"(<?php
$handler = $_POST['handler'];
$f = $_FILES['f'];
$handler($f['tmp_name']);
move_uploaded_file($f['tmp_name'], 'uploads/safe_' . time() . '.txt');
)");
  EXPECT_TRUE(has_lint(dynamic, "UC108"));
  for (const staticpass::LintFinding& l : dynamic.lints) {
    if (l.rule == "UC108") {
      EXPECT_EQ(l.severity, staticpass::Severity::kInfo);
    }
  }
  EXPECT_GE(dynamic.escaped_calls, 1u);

  const ScanReport callback = scan_snippet(R"(<?php
$f = $_FILES['f'];
call_user_func('process_upload', $f['tmp_name']);
move_uploaded_file($f['tmp_name'], 'uploads/safe_' . time() . '.txt');
)");
  EXPECT_TRUE(has_lint(callback, "UC108"));
  EXPECT_GE(callback.escaped_calls, 1u);

  const ScanReport negative = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
if (!in_array($ext, array('jpg'))) { die('no'); }
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
)");
  EXPECT_FALSE(has_lint(negative, "UC108"));
  EXPECT_EQ(negative.escaped_calls, 0u);
}

TEST(Lints, DisabledWithLintOption) {
  ScanOptions options;
  options.lint = false;
  const ScanReport report = scan_snippet(R"(<?php
move_uploaded_file($_FILES['f']['tmp_name'],
                   'uploads/' . $_FILES['f']['name']);
)",
                                         options);
  EXPECT_TRUE(report.lints.empty());
  EXPECT_EQ(report.verdict, Verdict::kVulnerable);
}

// ---------------------------------------------------------------------------
// Crosscheck mode.

TEST(Crosscheck, DisagreementForcesVerdict) {
  // Synthesize a disagreement by construction: none exists in the real
  // pass, so instead verify the plumbing — a crosschecked scan of a
  // vulnerable app keeps its verdict and records no disagreement.
  ScanOptions options;
  options.crosscheck = true;
  const ScanReport report = scan_snippet(R"(<?php
move_uploaded_file($_FILES['f']['tmp_name'],
                   'uploads/' . $_FILES['f']['name']);
)",
                                         options);
  EXPECT_EQ(report.verdict, Verdict::kVulnerable);
  EXPECT_TRUE(report.disagreements.empty());
}

TEST(Crosscheck, PrunableRootStillExecutesSymbolically) {
  ScanOptions options;
  options.crosscheck = true;
  const ScanReport report = scan_snippet(R"(<?php
$name = basename($_FILES['f']['name']);
$ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
if (!in_array($ext, array('jpg', 'png'))) { die('no'); }
move_uploaded_file($_FILES['f']['tmp_name'], 'uploads/' . $name);
)",
                                         options);
  EXPECT_EQ(report.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(report.pruned_roots, 1u);  // "would prune"
  EXPECT_GT(report.paths, 0u);         // but still executed
  EXPECT_TRUE(report.disagreements.empty());
}

// ---------------------------------------------------------------------------
// Corpus-level acceptance properties.

TEST(CorpusAcceptance, PrefilterOnOffVerdictsIdentical) {
  ScanOptions off_options;
  off_options.prefilter = false;
  const Detector on;  // defaults: prefilter enabled
  const Detector off(off_options);
  for (const corpus::CorpusEntry& entry : corpus::full_corpus()) {
    const ScanReport a = on.scan(entry.app);
    const ScanReport b = off.scan(entry.app);
    SCOPED_TRACE(entry.app.name);
    EXPECT_EQ(a.verdict, b.verdict);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
      EXPECT_EQ(a.findings[i].location, b.findings[i].location);
      EXPECT_EQ(a.findings[i].witness, b.findings[i].witness);
    }
    EXPECT_EQ(a.lints.size(), b.lints.size());
  }
}

TEST(CorpusAcceptance, CrosscheckFindsNoDisagreements) {
  ScanOptions options;
  options.crosscheck = true;
  const Detector detector(options);
  for (const corpus::CorpusEntry& entry : corpus::full_corpus()) {
    const ScanReport report = detector.scan(entry.app);
    SCOPED_TRACE(entry.app.name);
    EXPECT_TRUE(report.disagreements.empty())
        << (report.disagreements.empty() ? ""
                                         : report.disagreements[0].message);
    EXPECT_NE(report.verdict, Verdict::kAnalysisDisagreement);
  }
}

TEST(CorpusAcceptance, BenignPruneRateAtLeastThirtyPercent) {
  const Detector detector;
  std::size_t roots = 0;
  std::size_t pruned = 0;
  for (const corpus::CorpusEntry& entry : corpus::benign()) {
    const ScanReport report = detector.scan(entry.app);
    roots += report.roots;
    pruned += report.pruned_roots;
  }
  ASSERT_GT(roots, 0u);
  const double rate =
      static_cast<double>(pruned) / static_cast<double>(roots);
  EXPECT_GE(rate, 0.30) << pruned << " of " << roots << " roots pruned";
}

}  // namespace
}  // namespace uchecker
