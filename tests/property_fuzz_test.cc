// Property tests over generated PHP programs.
//
// A deterministic grammar-driven generator produces programs mixing the
// constructs the interpreter supports (assignments, string/arith
// expressions, conditionals, loops, switch, functions, $_FILES accesses,
// sinks). For every seed the whole pipeline must uphold its invariants:
// the parser recovers or succeeds, the interpreter terminates within
// budget, every environment references valid heap-graph objects, the
// graph stays a DAG, and the detector returns a definite verdict.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/detector/detector.h"
#include "core/heapgraph/sexpr.h"
#include "core/interp/interp.h"
#include "phpast/printer.h"
#include "phpparse/parse_pool.h"
#include "phpparse/parser.h"

namespace uchecker {
namespace {

using namespace core;  // NOLINT

class ProgramGenerator {
 public:
  explicit ProgramGenerator(unsigned seed) : state_(seed * 2654435761u + 97u) {}

  std::string generate() {
    std::string out = "<?php\n";
    const int statements = 3 + static_cast<int>(next(8));
    for (int i = 0; i < statements; ++i) out += statement(2);
    // Always end with a (possibly guarded) upload so sinks are exercised.
    if (next(2) == 0) {
      out += "$ext = strtolower(pathinfo($_FILES['f']['name'], "
             "PATHINFO_EXTENSION));\n";
      out += "if (in_array($ext, array('jpg', 'png'))) {\n";
      out += "    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
             "$_FILES['f']['name']);\n";
      out += "}\n";
    } else {
      out += "move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
             "$_FILES['f']['name']);\n";
    }
    return out;
  }

 private:
  unsigned next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_ >> 8;
  }
  unsigned next(unsigned bound) { return bound == 0 ? 0 : next() % bound; }

  std::string var() { return "$v" + std::to_string(next(6)); }

  std::string expr(int depth) {
    if (depth <= 0) {
      switch (next(5)) {
        case 0: return std::to_string(next(100));
        case 1: return "'s" + std::to_string(next(10)) + "'";
        case 2: return var();
        case 3: return "$_POST['p" + std::to_string(next(3)) + "']";
        default: return "$_FILES['f']['name']";
      }
    }
    switch (next(7)) {
      case 0: return expr(depth - 1) + " . " + expr(depth - 1);
      case 1: return expr(depth - 1) + " + " + expr(depth - 1);
      case 2: return expr(depth - 1) + " == " + expr(depth - 1);
      case 3: return "strtolower(" + expr(depth - 1) + ")";
      case 4: return "strlen(" + expr(depth - 1) + ")";
      case 5: return "(" + expr(depth - 1) + " ? " + expr(depth - 1) + " : " +
                     expr(depth - 1) + ")";
      default: return "isset(" + var() + ")";
    }
  }

  std::string statement(int depth) {
    if (depth <= 0) return "    " + var() + " = " + expr(1) + ";\n";
    switch (next(8)) {
      case 0:
      case 1:
        return var() + " = " + expr(2) + ";\n";
      case 2: {
        std::string s = "if (" + expr(1) + ") {\n";
        s += statement(depth - 1);
        if (next(2) == 0) {
          s += "} else {\n";
          s += statement(depth - 1);
        }
        s += "}\n";
        return s;
      }
      case 3: {
        std::string s = "switch (" + var() + ") {\n";
        const int cases = 2 + static_cast<int>(next(3));
        for (int i = 0; i < cases; ++i) {
          s += "case " + std::to_string(i) + ":\n";
          s += statement(0);
          s += "break;\n";
        }
        s += "default:\n";
        s += statement(0);
        s += "}\n";
        return s;
      }
      case 4: {
        std::string s = "while (" + expr(1) + ") {\n";
        s += statement(depth - 1);
        s += "}\n";
        return s;
      }
      case 5: {
        std::string s = "foreach (array(1, 2, 3) as $it) {\n";
        s += statement(0);
        s += "}\n";
        return s;
      }
      case 6: {
        const std::string fn = "gen_fn_" + std::to_string(next(1000));
        std::string s = "function " + fn + "($p) {\n";
        s += "    return $p . '-x';\n";
        s += "}\n";
        s += var() + " = " + fn + "(" + expr(1) + ");\n";
        return s;
      }
      default:
        return "$arr" + std::to_string(next(3)) + "['k" +
               std::to_string(next(3)) + "'] = " + expr(1) + ";\n";
    }
  }

  unsigned state_;
};

class FuzzPipeline : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzPipeline, InvariantsHold) {
  ProgramGenerator gen(GetParam());
  const std::string php = gen.generate();
  SCOPED_TRACE(php);

  // 1. Parsing must not crash and must not produce errors (the generator
  //    only emits supported grammar).
  SourceManager sources;
  DiagnosticSink diags;
  const FileId id = sources.add_file("fuzz.php", php);
  Arena arena;
  const phpast::PhpFile file =
      phpparse::parse_php(*sources.file(id), diags, arena);
  EXPECT_EQ(diags.error_count(), 0u) << diags.render(sources);

  // 2. The interpreter terminates within budget and maintains heap
  //    invariants.
  const Program program = build_program({&file});
  Budget budget;
  budget.max_paths = 4096;
  budget.max_objects = 200'000;
  Interpreter interp(program, diags, budget);
  AnalysisRoot root;
  root.file = &file;
  const InterpResult result = interp.run(root);

  EXPECT_GE(result.envs.size(), 1u);
  for (const Env& env : result.envs) {
    for (const auto& [name, label] : env.map()) {
      ASSERT_NE(result.graph.find(label), nullptr) << name;
    }
    if (env.cur() != kNoLabel) {
      ASSERT_NE(result.graph.find(env.cur()), nullptr);
    }
  }
  // DAG invariant: children precede parents.
  for (const Object& obj : result.graph.objects()) {
    for (Label child : obj.children) {
      ASSERT_LT(child, obj.label);
      ASSERT_NE(child, kNoLabel);
    }
    for (const ArrayEntry& e : obj.entries) {
      ASSERT_LE(e.value, result.graph.object_count());
    }
  }
  // Sinks reference valid objects and were recorded on running paths.
  for (const SinkHit& sink : result.sinks) {
    ASSERT_NE(result.graph.find(sink.src), nullptr);
    ASSERT_NE(result.graph.find(sink.dst), nullptr);
    // S-expression rendering never crashes on any recorded object.
    (void)to_sexpr(result.graph, sink.dst);
  }

  // 3. End-to-end: the detector returns a definite verdict (generated
  //    programs stay within budget).
  Application app;
  app.name = "fuzz";
  app.files.push_back(AppFile{"fuzz.php", php});
  ScanOptions options;
  options.budget = budget;
  const ScanReport report = Detector(options).scan(app);
  EXPECT_NE(report.verdict, Verdict::kAnalysisIncomplete);
  // The generator always appends a (guarded or unguarded) sink with
  // $_FILES flowing into it, so a root must exist.
  EXPECT_GE(report.roots, 1u);

  // 4. Pruning invariance: the static prefilter may skip symbolic
  //    execution but must never change the verdict or the findings.
  ScanOptions no_prefilter = options;
  no_prefilter.prefilter = false;
  const ScanReport off = Detector(no_prefilter).scan(app);
  EXPECT_EQ(report.verdict, off.verdict) << php;
  ASSERT_EQ(report.findings.size(), off.findings.size()) << php;
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    EXPECT_EQ(report.findings[i].location, off.findings[i].location);
    EXPECT_EQ(report.findings[i].sink_name, off.findings[i].sink_name);
  }
  // Lints are computed by the same pass either way.
  ASSERT_EQ(report.lints.size(), off.lints.size());

  // 5. Crosscheck oracle: running both engines on every root must find
  //    no root the static pass would prune that the symbolic engine
  //    flags (the pruning soundness contract).
  ScanOptions crosscheck = options;
  crosscheck.crosscheck = true;
  const ScanReport both = Detector(crosscheck).scan(app);
  EXPECT_TRUE(both.disagreements.empty())
      << php << "\n"
      << (both.disagreements.empty() ? "" : both.disagreements[0].message);
  EXPECT_NE(both.verdict, Verdict::kAnalysisDisagreement);

  // 6. Summary invariance: the inter-procedural summary layer may prune
  //    more roots and emit UC107/UC108 lints, but verdicts and findings
  //    must be byte-identical with it disabled.
  ScanOptions no_summaries = options;
  no_summaries.summaries = false;
  const ScanReport plain = Detector(no_summaries).scan(app);
  EXPECT_EQ(report.verdict, plain.verdict) << php;
  ASSERT_EQ(report.findings.size(), plain.findings.size()) << php;
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    EXPECT_EQ(report.findings[i].location, plain.findings[i].location);
    EXPECT_EQ(report.findings[i].sink_name, plain.findings[i].sink_name);
    EXPECT_EQ(report.findings[i].fingerprint, plain.findings[i].fingerprint);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range(1u, 41u));  // 40 seeds

// Parallel-parse invariance: parsing the same app serially and on the
// thread pool must produce byte-identical ASTs (printer dumps) and the
// same corpus verdicts/findings — thread count is a wall-clock knob,
// never a semantic one. Also the TSan scenario for the parse pool under
// a realistic multi-file workload.
TEST(FuzzParallelParse, SerialAndParallelAgree) {
  // One multi-file app per seed batch: files generated from distinct
  // seeds so they differ in shape, plus one syntactically broken file to
  // exercise per-file diagnostic isolation.
  for (unsigned base = 200; base < 204; ++base) {
    Application app;
    app.name = "fuzz-parallel";
    for (unsigned i = 0; i < 12; ++i) {
      ProgramGenerator gen(base * 31 + i);
      app.files.push_back(
          AppFile{"f" + std::to_string(i) + ".php", gen.generate()});
    }
    app.files.push_back(AppFile{"broken.php", "<?php if ($x { nope"});

    // AST identity, file by file.
    SourceManager serial_sm;
    SourceManager parallel_sm;
    std::vector<const SourceFile*> serial_files;
    std::vector<const SourceFile*> parallel_files;
    for (const AppFile& f : app.files) {
      serial_files.push_back(serial_sm.file(serial_sm.add_file(f.name, f.content)));
      parallel_files.push_back(
          parallel_sm.file(parallel_sm.add_file(f.name, f.content)));
    }
    const auto serial_units = phpparse::parse_files(serial_files, 1);
    const auto parallel_units = phpparse::parse_files(parallel_files, 4);
    ASSERT_EQ(serial_units.size(), parallel_units.size());
    for (std::size_t i = 0; i < serial_units.size(); ++i) {
      EXPECT_EQ(phpast::dump(serial_units[i].ast),
                phpast::dump(parallel_units[i].ast))
          << app.files[i].name;
      EXPECT_EQ(serial_units[i].diags.error_count(),
                parallel_units[i].diags.error_count())
          << app.files[i].name;
    }

    // Verdict identity end to end.
    ScanOptions serial_opts;
    serial_opts.parse_threads = 1;
    ScanOptions parallel_opts;
    parallel_opts.parse_threads = 4;
    const ScanReport a = Detector(serial_opts).scan(app);
    const ScanReport b = Detector(parallel_opts).scan(app);
    EXPECT_EQ(a.verdict, b.verdict) << base;
    EXPECT_EQ(a.parse_errors, b.parse_errors);
    EXPECT_EQ(a.roots, b.roots);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
      EXPECT_EQ(a.findings[i].location, b.findings[i].location);
      EXPECT_EQ(a.findings[i].sink_name, b.findings[i].sink_name);
      EXPECT_EQ(a.findings[i].fingerprint, b.findings[i].fingerprint);
    }
    ASSERT_EQ(a.lints.size(), b.lints.size());
    EXPECT_EQ(a.diagnostics_by_phase, b.diagnostics_by_phase);
  }
}

// Helper-wrapped differential: move the generated program's final sink
// into a user-defined helper so the root has no lexical sink and the
// static pass must reason inter-procedurally. Verdicts must match the
// inlined shape, agree with summaries on/off, and survive crosscheck.
TEST(FuzzSummaries, HelperWrappedSinkDifferential) {
  for (unsigned seed = 300; seed < 320; ++seed) {
    ProgramGenerator gen(seed);
    std::string php = gen.generate();
    // Replace the generator's trailing sink line(s) with a helper call:
    // everything before the first sink-related line stays as prefix noise.
    const std::size_t cut = std::min(php.find("$ext = strtolower"),
                                     php.find("move_uploaded_file("));
    ASSERT_NE(cut, std::string::npos);
    const bool guarded = php.find("in_array($ext") != std::string::npos;
    std::string wrapped = php.substr(0, cut);
    if (guarded) {
      wrapped +=
          "function fuzz_store($tmp, $name) {\n"
          "    $ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));\n"
          "    if (!in_array($ext, array('jpg', 'png'))) { return false; }\n"
          "    return move_uploaded_file($tmp, '/u/' . basename($name));\n"
          "}\n";
    } else {
      wrapped +=
          "function fuzz_store($tmp, $name) {\n"
          "    return move_uploaded_file($tmp, '/u/' . $name);\n"
          "}\n";
    }
    wrapped += "$fz = $_FILES['f'];\n";
    wrapped += "fuzz_store($fz['tmp_name'], $fz['name']);\n";

    Application app;
    app.name = "fuzz-helper";
    app.files.push_back(AppFile{"fuzz.php", wrapped});
    SCOPED_TRACE(wrapped);

    const ScanReport with = Detector().scan(app);
    ScanOptions off_opts;
    off_opts.summaries = false;
    const ScanReport without = Detector(off_opts).scan(app);
    EXPECT_EQ(with.verdict, without.verdict) << seed;
    EXPECT_EQ(with.verdict,
              guarded ? Verdict::kNotVulnerable : Verdict::kVulnerable)
        << seed;
    ASSERT_EQ(with.findings.size(), without.findings.size()) << seed;
    for (std::size_t i = 0; i < with.findings.size(); ++i) {
      EXPECT_EQ(with.findings[i].fingerprint, without.findings[i].fingerprint);
    }

    ScanOptions cross_opts;
    cross_opts.crosscheck = true;
    const ScanReport cross = Detector(cross_opts).scan(app);
    EXPECT_TRUE(cross.disagreements.empty()) << seed;
    EXPECT_NE(cross.verdict, Verdict::kAnalysisDisagreement) << seed;
  }
}

// The unguarded variant must always be detected; the whitelist-guarded
// variant never. Split by the generator's own coin flip.
TEST(FuzzVerdict, GuardDecidesVerdict) {
  for (unsigned seed = 100; seed < 120; ++seed) {
    ProgramGenerator gen(seed);
    const std::string php = gen.generate();
    const bool guarded = php.find("in_array($ext") != std::string::npos;
    Application app;
    app.name = "fuzz-verdict";
    app.files.push_back(AppFile{"fuzz.php", php});
    const ScanReport report = Detector().scan(app);
    SCOPED_TRACE(php);
    if (guarded) {
      EXPECT_EQ(report.verdict, Verdict::kNotVulnerable) << seed;
    } else {
      EXPECT_EQ(report.verdict, Verdict::kVulnerable) << seed;
    }
  }
}

}  // namespace
}  // namespace uchecker
