// Tests for the PHP builtin models (§III-B4) through the interpreter.
#include <gtest/gtest.h>

#include "core/heapgraph/sexpr.h"
#include "core/interp/builtins.h"
#include "core/interp/interp.h"
#include "phpparse/parser.h"

namespace uchecker::core {
namespace {

struct ExecRun {
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // declared before files: ASTs live here
  std::vector<phpast::PhpFile> files;
  Program program;
  InterpResult result;

  explicit ExecRun(const std::string& src) {
    const FileId id = sources.add_file("t.php", "<?php\n" + src);
    arenas.emplace_back();
    files.push_back(phpparse::parse_php(*sources.file(id), diags, arenas.back()));
    std::vector<const phpast::PhpFile*> ptrs{&files[0]};
    program = build_program(ptrs);
    Interpreter interp(program, diags);
    AnalysisRoot root;
    root.file = &files[0];
    result = interp.run(root);
  }

  [[nodiscard]] std::string value(const std::string& name) const {
    return to_sexpr(result.graph, result.envs.at(0).get_map(name));
  }
  [[nodiscard]] const Object& object(const std::string& name) const {
    return result.graph.at(result.envs.at(0).get_map(name));
  }
};

TEST(Builtins, PathinfoExtensionBindsToExtSymbol) {
  ExecRun r("$e = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);");
  EXPECT_EQ(r.value("e"), "s_files_f_ext");
}

TEST(Builtins, PathinfoFilenameBindsToStemSymbol) {
  ExecRun r("$s = pathinfo($_FILES['f']['name'], PATHINFO_FILENAME);");
  EXPECT_EQ(r.value("s"), "s_files_f_filename");
}

TEST(Builtins, PathinfoFullArrayHasComponents) {
  ExecRun r("$i = pathinfo($_FILES['f']['name']); $b = $i['basename']; "
            "$e = $i['extension'];");
  EXPECT_EQ(r.value("e"), "s_files_f_ext");
  EXPECT_NE(r.value("b").find("s_files_f_filename"), std::string::npos);
}

TEST(Builtins, PathinfoThroughWrappersStillResolves) {
  ExecRun r("$e = pathinfo(strtolower(basename($_FILES['f']['name'])), "
            "PATHINFO_EXTENSION);");
  EXPECT_EQ(r.value("e"), "s_files_f_ext");
}

TEST(Builtins, PathinfoOnUnknownStringIsFreshSymbol) {
  ExecRun r("$e = pathinfo($some_path, PATHINFO_EXTENSION);");
  EXPECT_NE(r.value("e").find("pathinfo_ext"), std::string::npos);
}

TEST(Builtins, ExplodeDotOnFilesName) {
  ExecRun r("$parts = explode('.', $_FILES['f']['name']); $e = end($parts);");
  EXPECT_EQ(r.value("e"), "s_files_f_ext");
}

TEST(Builtins, ExplodeOtherSeparatorOpaque) {
  ExecRun r("$parts = explode('/', $_FILES['f']['name']);");
  EXPECT_EQ(r.object("parts").kind, Object::Kind::kFunc);
}

TEST(Builtins, EndOnKnownArray) {
  ExecRun r("$a = array('x', 'y', 'z'); $last = end($a);");
  EXPECT_EQ(r.value("last"), "\"z\"");
}

TEST(Builtins, ResetOnKnownArray) {
  ExecRun r("$a = array('x', 'y'); $first = reset($a);");
  EXPECT_EQ(r.value("first"), "\"x\"");
}

TEST(Builtins, CountOnKnownArray) {
  ExecRun r("$n = count(array(1, 2, 3));");
  EXPECT_EQ(r.value("n"), "3");
}

TEST(Builtins, InArrayExpandsToOrOfEquals) {
  ExecRun r("$ok = in_array($x, array('a', 'b'));");
  EXPECT_EQ(r.value("ok"), "(OR (== s_x_1 \"a\") (== s_x_1 \"b\"))");
}

TEST(Builtins, InArrayUnknownHaystackIsSymbol) {
  ExecRun r("$ok = in_array($x, $list);");
  EXPECT_EQ(r.object("ok").kind, Object::Kind::kSymbol);
  EXPECT_EQ(r.object("ok").type, Type::kBool);
}

TEST(Builtins, BasenameConcreteComputed) {
  ExecRun r("$b = basename('/var/www/up.php');");
  EXPECT_EQ(r.value("b"), "\"up.php\"");
}

TEST(Builtins, BasenameSymbolicWrapped) {
  ExecRun r("$b = basename($_FILES['f']['name']);");
  EXPECT_EQ(r.value("b"),
            "(basename (. (. s_files_f_filename \".\") s_files_f_ext))");
}

TEST(Builtins, SprintfSimpleFormatsBecomeConcat) {
  ExecRun r("$s = sprintf('%s/%s.bak', $dir, $name);");
  EXPECT_EQ(r.value("s"),
            "(. (. (. s_dir_1 \"/\") s_name_2) \".bak\")");
}

TEST(Builtins, SprintfComplexFormatOpaque) {
  ExecRun r("$s = sprintf('%05.2f', $x);");
  EXPECT_EQ(r.object("s").kind, Object::Kind::kFunc);
}

TEST(Builtins, StrrchrDotYieldsDotExt) {
  ExecRun r("$e = strrchr($_FILES['f']['name'], '.');");
  EXPECT_EQ(r.value("e"), "(. \".\" s_files_f_ext)");
}

TEST(Builtins, ArrayKeysOnKnownArray) {
  ExecRun r("$k = array_keys(array('a' => 1, 'b' => 2)); $first = $k[0];");
  EXPECT_EQ(r.value("first"), "\"a\"");
}

TEST(Builtins, HookRegistrarsReturnTrue) {
  ExecRun r("$r = add_action('init', 'cb');");
  EXPECT_EQ(r.value("r"), "true");
}

TEST(Builtins, TypedOpaqueResultTypes) {
  ExecRun r("$l = strlen($s); $p = strpos($a, $b); $u = wp_upload_dir();");
  EXPECT_EQ(r.object("l").type, Type::kInt);
  EXPECT_EQ(r.object("p").type, Type::kInt);
  EXPECT_EQ(r.object("u").type, Type::kUnknown);
}

TEST(Builtins, UnknownFunctionIsOpaqueUnknown) {
  ExecRun r("$v = some_plugin_helper($a, $b);");
  const Object& v = r.object("v");
  EXPECT_EQ(v.kind, Object::Kind::kFunc);
  EXPECT_EQ(v.name, "some_plugin_helper");
  EXPECT_EQ(v.type, Type::kUnknown);
  EXPECT_EQ(v.children.size(), 2u);
}

TEST(Builtins, ConstantsResolve) {
  ExecRun r("$a = PATHINFO_EXTENSION; $b = DIRECTORY_SEPARATOR; "
            "$c = UPLOAD_ERR_OK;");
  EXPECT_EQ(r.value("a"), "4");
  EXPECT_EQ(r.value("b"), "\"/\"");
  EXPECT_EQ(r.value("c"), "0");
}

TEST(Builtins, UnknownConstantIsSymbol) {
  ExecRun r("$a = SOME_PLUGIN_CONST;");
  EXPECT_EQ(r.object("a").kind, Object::Kind::kSymbol);
}

TEST(Builtins, IdentityChainResolution) {
  HeapGraph g;
  const Label s = g.add_symbol("x", Type::kString);
  const Label t = g.add_func("trim", Type::kString, {s});
  const Label l = g.add_func("strtolower", Type::kString, {t});
  EXPECT_EQ(resolve_through_identity(g, l), s);
  EXPECT_TRUE(is_identity_builtin("sanitize_file_name"));
  EXPECT_FALSE(is_identity_builtin("md5"));
}


TEST(Builtins, ArrayMergeKnownArrays) {
  ExecRun r("$a = array_merge(array('x'), array('y', 'k' => 'v')); "
            "$p = $a[1]; $q = $a['k'];");
  EXPECT_EQ(r.value("p"), "\"y\"");
  EXPECT_EQ(r.value("q"), "\"v\"");
}

TEST(Builtins, ArrayMergeStringKeyOverwrite) {
  ExecRun r("$a = array_merge(array('k' => 1), array('k' => 2)); $v = $a['k'];");
  EXPECT_EQ(r.value("v"), "2");
}

TEST(Builtins, ArrayMergeUnknownOperandOpaque) {
  ExecRun r("$a = array_merge(array('x'), $unknown);");
  EXPECT_EQ(r.object("a").kind, Object::Kind::kFunc);
}

TEST(Builtins, ImplodeKnownArrayBecomesConcat) {
  ExecRun r("$s = implode('/', array('a', 'b', 'c'));");
  EXPECT_EQ(r.value("s"), "(. (. (. (. \"a\" \"/\") \"b\") \"/\") \"c\")");
}

TEST(Builtins, ImplodeUnknownArrayOpaque) {
  ExecRun r("$s = implode('/', $parts);");
  EXPECT_EQ(r.object("s").kind, Object::Kind::kFunc);
}

TEST(Builtins, UcfirstIsIdentityTranslated) {
  EXPECT_TRUE(is_identity_builtin("ucfirst"));
  EXPECT_TRUE(is_identity_builtin("mb_strtolower"));
}

}  // namespace
}  // namespace uchecker::core
