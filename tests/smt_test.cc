// Tests for the Z3 wrapper layer.
#include "smt/solver.h"

#include <gtest/gtest.h>

#include <chrono>

#include "support/deadline.h"
#include "support/fault_injector.h"

namespace uchecker::smt {
namespace {

TEST(Checker, SatWithModel) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr x = ctx.string_const("x");
  const SolverOutcome outcome =
      checker.check(z3::suffixof(ctx.string_val(".php"), x));
  EXPECT_EQ(outcome.result, SatResult::kSat);
  ASSERT_TRUE(outcome.model.has_value());
  EXPECT_TRUE(outcome.model->assignments.contains("x"));
}

TEST(Checker, Unsat) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr x = ctx.int_const("x");
  const SolverOutcome outcome = checker.check({x > 5, x < 3});
  EXPECT_EQ(outcome.result, SatResult::kUnsat);
  EXPECT_FALSE(outcome.model.has_value());
}

TEST(Checker, ConjunctionOfConstraints) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr s = ctx.string_const("s");
  const SolverOutcome outcome = checker.check(
      {z3::suffixof(ctx.string_val(".php"), s),
       s.length() == 7});
  EXPECT_EQ(outcome.result, SatResult::kSat);
}

TEST(Checker, StringTheoryOperations) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr a = ctx.string_val("upload");
  const z3::expr b = ctx.string_val(".php");
  // concat("upload", ".php") has length 10 and ends with ".php".
  const z3::expr cat = z3::concat(a, b);
  EXPECT_EQ(checker.check(cat.length() == 10).result, SatResult::kSat);
  EXPECT_EQ(checker.check(cat.length() != 10).result, SatResult::kUnsat);
  EXPECT_EQ(checker.check(!z3::suffixof(b, cat)).result, SatResult::kUnsat);
}

TEST(Checker, CountsChecks) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  EXPECT_EQ(checker.check_count(), 0u);
  (void)checker.check(ctx.bool_val(true));
  (void)checker.check(ctx.bool_val(false));
  EXPECT_EQ(checker.check_count(), 2u);
}

TEST(Checker, TrivialBooleans) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  EXPECT_EQ(checker.check(ctx.bool_val(true)).result, SatResult::kSat);
  EXPECT_EQ(checker.check(ctx.bool_val(false)).result, SatResult::kUnsat);
}

TEST(Model, ToStringIsStable) {
  Model m;
  m.assignments["b"] = "\"y\"";
  m.assignments["a"] = "\"x\"";
  EXPECT_EQ(m.to_string(), "a = \"x\", b = \"y\"");
}

TEST(SatResultName, AllValues) {
  EXPECT_EQ(sat_result_name(SatResult::kSat), "sat");
  EXPECT_EQ(sat_result_name(SatResult::kUnsat), "unsat");
  EXPECT_EQ(sat_result_name(SatResult::kUnknown), "unknown");
}

// ---------------------------------------------------------------------------
// Failure containment and retry escalation.

class CheckerFaults : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

TEST_F(CheckerFaults, ExceptionPathPopulatesErrorWithoutRetry) {
  // A permanent (non-transient) exception inside the solve attempt is
  // contained: kUnknown + error, and no escalation retry is wasted.
  FaultInjector::instance().arm("solve-attempt",
                                FaultInjector::Action::kThrow,
                                std::chrono::milliseconds{0}, 1);
  Checker checker(100, 2);
  const SolverOutcome outcome = checker.check(checker.ctx().bool_val(true));
  EXPECT_EQ(outcome.result, SatResult::kUnknown);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_FALSE(outcome.model.has_value());
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(checker.retry_count(), 0u);
}

TEST_F(CheckerFaults, TransientFailureRetriesWithEscalatedTimeouts) {
  FaultInjector::instance().arm("solve-attempt",
                                FaultInjector::Action::kThrowTransient,
                                std::chrono::milliseconds{0}, /*max_hits=*/1);
  Checker checker(100, 2);
  const SolverOutcome outcome = checker.check(checker.ctx().bool_val(true));
  // Attempt 1 failed transiently; attempt 2 ran with a doubled timeout
  // and succeeded.
  EXPECT_EQ(outcome.result, SatResult::kSat);
  EXPECT_EQ(outcome.attempts, 2u);
  ASSERT_EQ(outcome.attempt_timeouts_ms.size(), 2u);
  EXPECT_EQ(outcome.attempt_timeouts_ms[0], 100u);
  EXPECT_EQ(outcome.attempt_timeouts_ms[1], 200u);
  EXPECT_EQ(checker.retry_count(), 1u);
  EXPECT_TRUE(outcome.error.empty());
}

TEST_F(CheckerFaults, RetryBudgetExhaustsAtOneTwoFourTimes) {
  FaultInjector::instance().arm("solve-attempt",
                                FaultInjector::Action::kThrowTransient,
                                std::chrono::milliseconds{0}, -1);
  Checker checker(100, 2);
  const SolverOutcome outcome = checker.check(checker.ctx().bool_val(true));
  EXPECT_EQ(outcome.result, SatResult::kUnknown);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_EQ(outcome.attempts, 3u);  // 1 initial + 2 retries
  ASSERT_EQ(outcome.attempt_timeouts_ms.size(), 3u);
  EXPECT_EQ(outcome.attempt_timeouts_ms[0], 100u);
  EXPECT_EQ(outcome.attempt_timeouts_ms[1], 200u);
  EXPECT_EQ(outcome.attempt_timeouts_ms[2], 400u);
  EXPECT_EQ(checker.retry_count(), 2u);
}

TEST_F(CheckerFaults, EscalationRespectsCap) {
  FaultInjector::instance().arm("solve-attempt",
                                FaultInjector::Action::kThrowTransient,
                                std::chrono::milliseconds{0}, -1);
  Checker checker(Checker::kTimeoutEscalationCap, 2);
  const SolverOutcome outcome = checker.check(checker.ctx().bool_val(true));
  ASSERT_EQ(outcome.attempt_timeouts_ms.size(), 3u);
  for (const unsigned t : outcome.attempt_timeouts_ms) {
    EXPECT_EQ(t, Checker::kTimeoutEscalationCap);
  }
}

TEST(CheckerDeadline, ExpiredDeadlineShortCircuits) {
  Checker checker;
  checker.set_deadline(Deadline::after(std::chrono::milliseconds{0}));
  const SolverOutcome outcome = checker.check(checker.ctx().bool_val(true));
  EXPECT_EQ(outcome.result, SatResult::kUnknown);
  EXPECT_TRUE(outcome.deadline_exceeded);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_FALSE(outcome.model.has_value());
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(checker.retry_count(), 0u);  // deadline unknowns never retry
}

TEST(CheckerDeadline, RemainingTimeClampsAttemptTimeout) {
  Checker checker(5000, 2);
  checker.set_deadline(Deadline::after(std::chrono::milliseconds{50}));
  const SolverOutcome outcome = checker.check(checker.ctx().bool_val(true));
  EXPECT_EQ(outcome.result, SatResult::kSat);
  ASSERT_EQ(outcome.attempt_timeouts_ms.size(), 1u);
  EXPECT_LE(outcome.attempt_timeouts_ms[0], 50u);
  EXPECT_GE(outcome.attempt_timeouts_ms[0], 1u);
}

TEST(CheckerDeadline, CancellationReportsCancelled) {
  CancellationSource cancel;
  Deadline deadline;  // unlimited, but carries the token
  deadline.attach(cancel.token());
  Checker checker;
  checker.set_deadline(deadline);
  cancel.cancel();
  const SolverOutcome outcome = checker.check(checker.ctx().bool_val(true));
  EXPECT_EQ(outcome.result, SatResult::kUnknown);
  EXPECT_TRUE(outcome.deadline_exceeded);
  EXPECT_NE(outcome.error.find("cancelled"), std::string::npos);
}

TEST(Checker, GenuineTimeoutPopulatesError) {
  // A word equation whose unsatisfiability needs a parity argument the
  // sequence solver searches for unboundedly: x.x = y.y."a" with long
  // minimum lengths. A 20 ms budget cancels the search; the cancellation
  // must surface as a retried kUnknown with a reason, never a hang.
  Checker checker(20, 1);
  z3::context& ctx = checker.ctx();
  const z3::expr x = ctx.string_const("x");
  const z3::expr y = ctx.string_const("y");
  const SolverOutcome outcome = checker.check(
      {z3::concat(x, x) == z3::concat(z3::concat(y, y), ctx.string_val("a")),
       x.length() > 2000, y.length() > 1000});
  if (outcome.result == SatResult::kUnknown) {
    EXPECT_FALSE(outcome.error.empty());
    EXPECT_GE(outcome.attempts, 1u);
    EXPECT_EQ(outcome.attempts, outcome.attempt_timeouts_ms.size());
  }
}

TEST(Checker, IntStringConversions) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr n = ctx.int_val(42);
  EXPECT_EQ(checker.check(n.itos() == ctx.string_val("42")).result,
            SatResult::kSat);
  EXPECT_EQ(checker.check(ctx.string_val("17").stoi() == 17).result,
            SatResult::kSat);
}

}  // namespace
}  // namespace uchecker::smt
