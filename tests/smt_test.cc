// Tests for the Z3 wrapper layer.
#include "smt/solver.h"

#include <gtest/gtest.h>

namespace uchecker::smt {
namespace {

TEST(Checker, SatWithModel) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr x = ctx.string_const("x");
  const SolverOutcome outcome =
      checker.check(z3::suffixof(ctx.string_val(".php"), x));
  EXPECT_EQ(outcome.result, SatResult::kSat);
  ASSERT_TRUE(outcome.model.has_value());
  EXPECT_TRUE(outcome.model->assignments.contains("x"));
}

TEST(Checker, Unsat) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr x = ctx.int_const("x");
  const SolverOutcome outcome = checker.check({x > 5, x < 3});
  EXPECT_EQ(outcome.result, SatResult::kUnsat);
  EXPECT_FALSE(outcome.model.has_value());
}

TEST(Checker, ConjunctionOfConstraints) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr s = ctx.string_const("s");
  const SolverOutcome outcome = checker.check(
      {z3::suffixof(ctx.string_val(".php"), s),
       s.length() == 7});
  EXPECT_EQ(outcome.result, SatResult::kSat);
}

TEST(Checker, StringTheoryOperations) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr a = ctx.string_val("upload");
  const z3::expr b = ctx.string_val(".php");
  // concat("upload", ".php") has length 10 and ends with ".php".
  const z3::expr cat = z3::concat(a, b);
  EXPECT_EQ(checker.check(cat.length() == 10).result, SatResult::kSat);
  EXPECT_EQ(checker.check(cat.length() != 10).result, SatResult::kUnsat);
  EXPECT_EQ(checker.check(!z3::suffixof(b, cat)).result, SatResult::kUnsat);
}

TEST(Checker, CountsChecks) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  EXPECT_EQ(checker.check_count(), 0u);
  (void)checker.check(ctx.bool_val(true));
  (void)checker.check(ctx.bool_val(false));
  EXPECT_EQ(checker.check_count(), 2u);
}

TEST(Checker, TrivialBooleans) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  EXPECT_EQ(checker.check(ctx.bool_val(true)).result, SatResult::kSat);
  EXPECT_EQ(checker.check(ctx.bool_val(false)).result, SatResult::kUnsat);
}

TEST(Model, ToStringIsStable) {
  Model m;
  m.assignments["b"] = "\"y\"";
  m.assignments["a"] = "\"x\"";
  EXPECT_EQ(m.to_string(), "a = \"x\", b = \"y\"");
}

TEST(SatResultName, AllValues) {
  EXPECT_EQ(sat_result_name(SatResult::kSat), "sat");
  EXPECT_EQ(sat_result_name(SatResult::kUnsat), "unsat");
  EXPECT_EQ(sat_result_name(SatResult::kUnknown), "unknown");
}

TEST(Checker, IntStringConversions) {
  Checker checker;
  z3::context& ctx = checker.ctx();
  const z3::expr n = ctx.int_val(42);
  EXPECT_EQ(checker.check(n.itos() == ctx.string_val("42")).result,
            SatResult::kSat);
  EXPECT_EQ(checker.check(ctx.string_val("17").stoi() == 17).result,
            SatResult::kSat);
}

}  // namespace
}  // namespace uchecker::smt
