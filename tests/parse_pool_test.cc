#include "phpparse/parse_pool.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "phpast/printer.h"
#include "support/deadline.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::phpparse {
namespace {

// A small app with per-file variety: plain code, strings needing
// decoding, functions, classes, and one file with a parse error so the
// diagnostic-merge order is exercised.
std::vector<std::pair<std::string, std::string>> corpus_files() {
  return {
      {"a.php", "<?php $x = $_FILES['f']['name']; move_uploaded_file($x, '/tmp/' . $x);"},
      {"b.php", "<?php function f($a) { return $a . \"suffix\\n\"; } echo f('x');"},
      {"c.php", "<?php class C { public $p = 'v'; function m() { return $this->p; } }"},
      {"bad.php", "<?php if ($x { broken"},
      {"d.php", "<?php $s = \"interp $x and {$y['k']} done\";"},
  };
}

struct Registered {
  SourceManager sources;
  std::vector<const SourceFile*> files;

  explicit Registered(
      const std::vector<std::pair<std::string, std::string>>& in) {
    for (const auto& [name, content] : in) {
      const FileId id = sources.add_file(name, content);
      files.push_back(sources.file(id));
    }
  }
};

// Renders every unit the same way the identity assertions compare them.
std::vector<std::string> dumps(const std::vector<ParsedUnit>& units) {
  std::vector<std::string> out;
  for (const ParsedUnit& u : units) out.push_back(phpast::dump(u.ast));
  return out;
}

TEST(ResolveParseThreads, Bounds) {
  EXPECT_EQ(resolve_parse_threads(4, 100), 4u);
  EXPECT_EQ(resolve_parse_threads(4, 2), 2u);   // never more than files
  EXPECT_EQ(resolve_parse_threads(1, 100), 1u);
  EXPECT_GE(resolve_parse_threads(0, 100), 1u); // auto resolves to >= 1
  EXPECT_LE(resolve_parse_threads(0, 100), 8u); // auto caps at 8
  EXPECT_EQ(resolve_parse_threads(0, 0), 1u);   // no files still >= 1
}

TEST(ParsePool, SerialAndParallelProduceIdenticalAsts) {
  Registered serial_reg(corpus_files());
  Registered parallel_reg(corpus_files());
  const auto serial = parse_files(serial_reg.files, 1);
  const auto parallel = parse_files(parallel_reg.files, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(dumps(serial), dumps(parallel));
}

TEST(ParsePool, DiagnosticsMatchSerialRunPerFile) {
  Registered serial_reg(corpus_files());
  Registered parallel_reg(corpus_files());
  const auto serial = parse_files(serial_reg.files, 1);
  const auto parallel = parse_files(parallel_reg.files, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].diags.error_count(), parallel[i].diags.error_count())
        << "file #" << i;
  }
  // The broken file reports its error in its own sink; clean files don't.
  EXPECT_GT(parallel[3].diags.error_count(), 0u);
  EXPECT_EQ(parallel[0].diags.error_count(), 0u);
}

TEST(ParsePool, EveryUnitAttemptedWithoutDeadline) {
  Registered reg(corpus_files());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    const auto units = parse_files(reg.files, threads);
    for (const ParsedUnit& u : units) {
      EXPECT_TRUE(u.attempted);
      EXPECT_EQ(u.error, nullptr);
    }
  }
}

TEST(ParsePool, ExpiredDeadlineSkipsFiles) {
  Registered reg(corpus_files());
  const Deadline expired = Deadline::after(std::chrono::milliseconds(0));
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto units = parse_files(reg.files, threads, &expired);
    ASSERT_EQ(units.size(), reg.files.size());
    for (const ParsedUnit& u : units) {
      // An already-expired deadline means no file should start (workers
      // check before claiming); skipped units carry no error.
      if (!u.attempted) EXPECT_EQ(u.error, nullptr);
    }
    EXPECT_FALSE(units.back().attempted);
  }
}

TEST(ParsePool, ManyFilesManyThreads) {
  // Stress the claim counter with more files than threads; under TSan
  // this is the main race check for the pool itself.
  std::vector<std::pair<std::string, std::string>> many;
  for (int i = 0; i < 64; ++i) {
    many.emplace_back("f" + std::to_string(i) + ".php",
                      "<?php $v" + std::to_string(i) + " = " +
                          std::to_string(i) + " + strlen('abc');");
  }
  Registered reg(many);
  const auto serial = parse_files(reg.files, 1);
  const auto parallel = parse_files(reg.files, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(parallel[i].attempted);
    EXPECT_EQ(phpast::dump(serial[i].ast), phpast::dump(parallel[i].ast));
  }
}

TEST(ParsePool, UnitsAreMovableWithValidAsts) {
  Registered reg(corpus_files());
  auto units = parse_files(reg.files, 2);
  const std::string before = phpast::dump(units[0].ast);
  // Moving a unit moves its arena blocks; the AST pointers stay valid.
  ParsedUnit moved = std::move(units[0]);
  EXPECT_EQ(phpast::dump(moved.ast), before);
}

}  // namespace
}  // namespace uchecker::phpparse
