#include "core/detector/report_io.h"

#include <gtest/gtest.h>

namespace uchecker::core {
namespace {

ScanReport sample_report() {
  ScanReport r;
  r.app_name = "demo \"quoted\" plugin";
  r.verdict = Verdict::kVulnerable;
  r.total_loc = 1000;
  r.analyzed_loc = 50;
  r.analyzed_percent = 5.0;
  r.paths = 8;
  r.objects = 80;
  r.objects_per_path = 10.0;
  r.memory_mb = 0.5;
  r.seconds = 0.125;
  r.roots = 1;
  r.sink_hits = 2;
  r.solver_calls = 1;
  Finding f;
  f.sink_name = "move_uploaded_file";
  f.location = "upload.php:7:5";
  f.file = "upload.php";
  f.line = 7;
  f.source_line = "move_uploaded_file($tmp, $dst);";
  f.dst_sexpr = "(. \"/u/\" s_name)";
  f.reach_sexpr = "true";
  f.witness = "s_ext = \"php\"";
  f.fingerprint = "0123456789abcdef";
  r.findings.push_back(std::move(f));
  return r;
}

// A sample report whose finding carries the full --explain bundle.
ScanReport evidence_report() {
  ScanReport r = sample_report();
  FindingEvidence& ev = r.findings[0].evidence;
  ev.taint_path.push_back(
      {"symbol", "s_files_f_tmp", "upload.php", 3, "upload.php:3"});
  ev.taint_path.push_back(
      {"op", "concat", "upload.php", 5, "upload.php:5"});
  ev.guards.push_back(
      {"(> s_size 10)", "upload.php", 4, "upload.php:4"});
  ev.bindings.push_back({"s_ext", "\"php\"", "php"});
  ev.upload_filename = "payload.php";
  ev.destination = "/u/payload.php";
  ev.destination_complete = true;
  return r;
}

TEST(ReportJson, ContainsAllFields) {
  const std::string json = to_json(sample_report());
  EXPECT_NE(json.find("\"verdict\": \"vulnerable\""), std::string::npos);
  EXPECT_NE(json.find("\"total_loc\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"paths\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"budget_exhausted\": false"), std::string::npos);
  EXPECT_NE(json.find("\"sink\": \"move_uploaded_file\""), std::string::npos);
  EXPECT_NE(json.find("\"location\": \"upload.php:7:5\""), std::string::npos);
}

TEST(ReportJson, FindingCarriesIdentityFields) {
  const std::string json = to_json(sample_report());
  EXPECT_NE(json.find("\"file\": \"upload.php\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\": \"0123456789abcdef\""),
            std::string::npos);
  // Without evidence there is no evidence member at all.
  EXPECT_EQ(json.find("\"evidence\""), std::string::npos);
}

TEST(ReportJson, EvidenceSerializedWhenPresent) {
  const std::string json = to_json(evidence_report());
  EXPECT_NE(json.find("\"evidence\": {\"taint_path\": ["), std::string::npos);
  EXPECT_NE(json.find("\"description\": \"s_files_f_tmp\""),
            std::string::npos);
  EXPECT_NE(json.find("\"location\": \"upload.php:3\""), std::string::npos);
  EXPECT_NE(json.find("\"sexpr\": \"(> s_size 10)\""), std::string::npos);
  EXPECT_NE(json.find("\"symbol\": \"s_ext\""), std::string::npos);
  EXPECT_NE(json.find("\"upload_filename\": \"payload.php\""),
            std::string::npos);
  EXPECT_NE(json.find("\"destination_complete\": true"), std::string::npos);
}

TEST(ReportText, EvidenceRendered) {
  const std::string text = to_text(evidence_report());
  EXPECT_NE(text.find("taint path:"), std::string::npos);
  EXPECT_NE(text.find("symbol s_files_f_tmp  [upload.php:3]"),
            std::string::npos);
  EXPECT_NE(text.find("guarded by:"), std::string::npos);
  EXPECT_NE(text.find("(> s_size 10)  [upload.php:4]"), std::string::npos);
  EXPECT_NE(text.find("upload \"payload.php\" -> written to "
                      "\"/u/payload.php\""),
            std::string::npos);
}

TEST(ReportJson, EscapesQuotesInStrings) {
  const std::string json = to_json(sample_report());
  EXPECT_NE(json.find("demo \\\"quoted\\\" plugin"), std::string::npos);
  EXPECT_NE(json.find("s_ext = \\\"php\\\""), std::string::npos);
}

TEST(ReportJson, EmptyFindingsIsEmptyArray) {
  ScanReport r;
  r.app_name = "clean";
  r.verdict = Verdict::kNotVulnerable;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"not_vulnerable\""), std::string::npos);
}

TEST(ReportJson, BalancedBracesAndQuotes) {
  const std::string json = to_json(sample_report());
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ReportText, HumanReadable) {
  const std::string text = to_text(sample_report());
  EXPECT_NE(text.find("verdict     : Vulnerable"), std::string::npos);
  EXPECT_NE(text.find("8 paths"), std::string::npos);
  EXPECT_NE(text.find("move_uploaded_file at upload.php:7:5"),
            std::string::npos);
}

TEST(ReportText, WarningsShown) {
  ScanReport r;
  r.app_name = "partial";
  r.verdict = Verdict::kAnalysisIncomplete;
  r.budget_exhausted = true;
  r.parse_errors = 3;
  const std::string text = to_text(r);
  EXPECT_NE(text.find("budget exhausted"), std::string::npos);
  EXPECT_NE(text.find("3 parse error(s)"), std::string::npos);
}

TEST(VerdictSlug, AllValues) {
  EXPECT_EQ(verdict_slug(Verdict::kVulnerable), "vulnerable");
  EXPECT_EQ(verdict_slug(Verdict::kNotVulnerable), "not_vulnerable");
  EXPECT_EQ(verdict_slug(Verdict::kAnalysisIncomplete),
            "analysis_incomplete");
  EXPECT_EQ(verdict_slug(Verdict::kAnalysisError), "analysis_error");
}

ScanReport degraded_report() {
  ScanReport r;
  r.app_name = "hostile";
  r.verdict = Verdict::kAnalysisError;
  r.deadline_exceeded = true;
  r.solver_retries = 2;
  r.analysis_errors = 1;
  r.errors.push_back(ScanError{"interp", "upload.php", "injected fault", true});
  r.errors.push_back(ScanError{"solve", "handler()", "z3 blew up", false});
  return r;
}

TEST(ReportJson, DegradationFields) {
  const std::string json = to_json(degraded_report());
  EXPECT_NE(json.find("\"verdict\": \"analysis_error\""), std::string::npos);
  EXPECT_NE(json.find("\"deadline_exceeded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"solver_retries\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"analysis_errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"interp\""), std::string::npos);
  EXPECT_NE(json.find("\"root\": \"upload.php\""), std::string::npos);
  EXPECT_NE(json.find("\"message\": \"injected fault\""), std::string::npos);
  EXPECT_NE(json.find("\"transient\": true"), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"solve\""), std::string::npos);
}

TEST(ReportJson, EmptyErrorsIsEmptyArray) {
  const std::string json = to_json(sample_report());
  EXPECT_NE(json.find("\"errors\": []"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_exceeded\": false"), std::string::npos);
  EXPECT_NE(json.find("\"solver_retries\": 0"), std::string::npos);
}

TEST(ReportJson, DegradedReportStaysBalanced) {
  const std::string json = to_json(degraded_report());
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ReportJson, DiagnosticsByPhase) {
  ScanReport r = degraded_report();
  r.diagnostics_by_phase = {{"parse", 3}, {"interp", 1}, {"", 2}};
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"diagnostics_by_phase\": {\"\": 2, \"interp\": 1, "
                      "\"parse\": 3}"),
            std::string::npos);
}

TEST(ReportJson, EmptyDiagnosticsByPhaseIsEmptyObject) {
  const std::string json = to_json(sample_report());
  EXPECT_NE(json.find("\"diagnostics_by_phase\": {}"), std::string::npos);
}

TEST(ReportText, DiagnosticsByPhaseShown) {
  ScanReport r = degraded_report();
  r.diagnostics_by_phase = {{"parse", 3}, {"", 1}};
  const std::string text = to_text(r);
  EXPECT_NE(text.find("diagnostics : <unattributed>=1 parse=3"),
            std::string::npos);
}

TEST(ReportText, DegradationShown) {
  const std::string text = to_text(degraded_report());
  EXPECT_NE(text.find("verdict     : Analysis error"), std::string::npos);
  EXPECT_NE(text.find("deadline exceeded"), std::string::npos);
  EXPECT_NE(text.find("[interp] upload.php: injected fault (transient)"),
            std::string::npos);
  EXPECT_NE(text.find("[solve] handler(): z3 blew up"), std::string::npos);
  EXPECT_NE(text.find("2 solver retries"), std::string::npos);
}

// --- report_from_json: the deserialization half of the scand verdict
// cache. The contract is exact inversion on to_json output — a cached
// replay must re-serialize byte-identically to the scan that stored it.

TEST(ReportRoundTrip, PlainReportInvertsExactly) {
  const std::string json = to_json(sample_report());
  const std::optional<ScanReport> parsed = report_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(to_json(*parsed), json);
  EXPECT_EQ(parsed->verdict, Verdict::kVulnerable);
  EXPECT_EQ(parsed->app_name, "demo \"quoted\" plugin");
  ASSERT_EQ(parsed->findings.size(), 1u);
  EXPECT_EQ(parsed->findings[0].fingerprint, "0123456789abcdef");
  EXPECT_EQ(parsed->findings[0].line, 7u);
}

TEST(ReportRoundTrip, EvidenceReportInvertsExactly) {
  const std::string json = to_json(evidence_report());
  const std::optional<ScanReport> parsed = report_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(to_json(*parsed), json);
  const FindingEvidence& ev = parsed->findings[0].evidence;
  ASSERT_EQ(ev.taint_path.size(), 2u);
  EXPECT_EQ(ev.taint_path[0].description, "s_files_f_tmp");
  ASSERT_EQ(ev.guards.size(), 1u);
  EXPECT_EQ(ev.guards[0].sexpr, "(> s_size 10)");
  ASSERT_EQ(ev.bindings.size(), 1u);
  EXPECT_EQ(ev.bindings[0].decoded, "php");
  EXPECT_EQ(ev.upload_filename, "payload.php");
  EXPECT_TRUE(ev.destination_complete);
}

TEST(ReportRoundTrip, DegradedReportInvertsExactly) {
  ScanReport r = degraded_report();
  r.diagnostics_by_phase = {{"parse", 3}, {"interp", 1}};
  staticpass::LintFinding lint;
  lint.rule = "UC103";
  lint.severity = staticpass::Severity::kWarning;
  lint.location = "upload.php:4";
  lint.message = "blacklist extension check";
  lint.evidence = "if ($ext !== 'php')";
  r.lints.push_back(std::move(lint));
  ScanError d;
  d.root = "handler()";
  d.message = "engines disagree";
  r.disagreements.push_back(std::move(d));

  const std::string json = to_json(r);
  const std::optional<ScanReport> parsed = report_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(to_json(*parsed), json);
  ASSERT_EQ(parsed->errors.size(), r.errors.size());
  EXPECT_EQ(parsed->errors[0].transient, r.errors[0].transient);
  ASSERT_EQ(parsed->lints.size(), 1u);
  EXPECT_EQ(parsed->lints[0].severity, staticpass::Severity::kWarning);
  ASSERT_EQ(parsed->disagreements.size(), 1u);
  EXPECT_EQ(parsed->diagnostics_by_phase.at("parse"), 3u);
}

TEST(ReportRoundTrip, RejectsDamagedInput) {
  EXPECT_FALSE(report_from_json("").has_value());
  EXPECT_FALSE(report_from_json("not json at all").has_value());
  EXPECT_FALSE(report_from_json("{}").has_value());
  EXPECT_FALSE(report_from_json("[1, 2, 3]").has_value());
  // Structurally valid JSON with a mangled verdict must not parse.
  std::string json = to_json(sample_report());
  const std::size_t pos = json.find("vulnerable");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 10, "vulnerablX");
  EXPECT_FALSE(report_from_json(json).has_value());
  // Truncation anywhere must not parse.
  const std::string whole = to_json(sample_report());
  EXPECT_FALSE(report_from_json(whole.substr(0, whole.size() / 2)).has_value());
}

}  // namespace
}  // namespace uchecker::core
