// Differential tests: concrete folding vs Z3 translation.
//
// For programs over concrete values only, the heap graph denotes exact
// values. A small reference evaluator folds each object to its concrete
// result using PHP semantics; the Z3 translation of the same object must
// then PROVE equality with that result (i.e. `trl(e) != folded(e)` is
// UNSAT). Any disagreement exposes a translation-rule bug.
//
// Known, documented semantic gaps are respected by construction:
//   - str_replace: Z3 replaces the first occurrence, PHP replaces all —
//     test inputs contain at most one occurrence;
//   - float arithmetic rides on Int — tests use integers;
//   - strtolower-style case mappers translate as identity — the folder
//     treats them as identity too (that is the documented model).
#include <gtest/gtest.h>

#include <optional>

#include "core/heapgraph/sexpr.h"
#include "core/interp/builtins.h"
#include "core/interp/interp.h"
#include "core/translate/translate.h"
#include "phpparse/parser.h"
#include "support/strutil.h"
#include "smt/solver.h"

namespace uchecker::core {
namespace {

// --- reference evaluator ---------------------------------------------------

struct Folded {
  enum class Kind { kBool, kInt, kString } kind;
  bool b = false;
  std::int64_t i = 0;
  std::string s;

  static Folded of(bool v) { return {Kind::kBool, v, 0, {}}; }
  static Folded of(std::int64_t v) { return {Kind::kInt, false, v, {}}; }
  static Folded of(std::string v) {
    return {Kind::kString, false, 0, std::move(v)};
  }

  [[nodiscard]] std::string as_string() const {
    switch (kind) {
      case Kind::kBool: return b ? "1" : "";
      case Kind::kInt: return std::to_string(i);
      case Kind::kString: return s;
    }
    return {};
  }
  [[nodiscard]] std::int64_t as_int() const {
    switch (kind) {
      case Kind::kBool: return b ? 1 : 0;
      case Kind::kInt: return i;
      case Kind::kString: return uchecker::strutil::php_intval(s);
    }
    return 0;
  }
  [[nodiscard]] bool as_bool() const {
    switch (kind) {
      case Kind::kBool: return b;
      case Kind::kInt: return i != 0;
      case Kind::kString: return !s.empty();
    }
    return false;
  }
};

// Folds a concrete-only heap-graph value; nullopt when any symbolic or
// unmodeled piece is involved.
std::optional<Folded> fold(const HeapGraph& g, Label label);

std::optional<Folded> fold_func(const HeapGraph& g, const Object& obj) {
  const auto arg = [&](std::size_t i) { return fold(g, obj.children[i]); };
  const std::size_t n = obj.children.size();
  if ((is_identity_builtin(obj.name) || obj.name == "basename") && n >= 1) {
    // The documented identity model (basename of a no-slash name).
    return arg(0);
  }
  if (obj.name == "strlen" && n == 1) {
    const auto a = arg(0);
    if (!a) return std::nullopt;
    return Folded::of(static_cast<std::int64_t>(a->as_string().size()));
  }
  if (obj.name == "strpos" && n >= 2) {
    const auto h = arg(0);
    const auto needle = arg(1);
    if (!h || !needle) return std::nullopt;
    const auto pos = h->as_string().find(needle->as_string());
    if (pos == std::string::npos) return std::nullopt;  // PHP false; skip
    return Folded::of(static_cast<std::int64_t>(pos));
  }
  if (obj.name == "intval" && n >= 1) {
    const auto a = arg(0);
    if (!a) return std::nullopt;
    return Folded::of(a->as_int());
  }
  if (obj.name == "strval" && n >= 1) {
    const auto a = arg(0);
    if (!a) return std::nullopt;
    return Folded::of(a->as_string());
  }
  if (obj.name == "str_replace" && n >= 3) {
    const auto search = arg(0);
    const auto repl = arg(1);
    const auto subject = arg(2);
    if (!search || !repl || !subject) return std::nullopt;
    // Single-occurrence inputs only (Z3 semantics).
    return Folded::of(uchecker::strutil::replace_all(subject->as_string(),
                                           search->as_string(),
                                           repl->as_string()));
  }
  if (obj.name == "substr") {
    const auto s = arg(0);
    const auto start = n >= 2 ? arg(1) : std::nullopt;
    if (!s || !start) return std::nullopt;
    const std::string str = s->as_string();
    std::int64_t from = start->as_int();
    if (from < 0) from += static_cast<std::int64_t>(str.size());
    if (from < 0 || from > static_cast<std::int64_t>(str.size())) {
      return std::nullopt;
    }
    std::int64_t len = static_cast<std::int64_t>(str.size()) - from;
    if (n >= 3) {
      const auto l = arg(2);
      if (!l) return std::nullopt;
      len = l->as_int();
      if (len < 0) len = static_cast<std::int64_t>(str.size()) - from + len;
      if (len < 0) return std::nullopt;
    }
    return Folded::of(str.substr(static_cast<std::size_t>(from),
                                 static_cast<std::size_t>(len)));
  }
  if (obj.name == "empty" && n == 1) {
    const auto a = arg(0);
    if (!a) return std::nullopt;
    return Folded::of(!a->as_bool());
  }
  return std::nullopt;
}

std::optional<Folded> fold(const HeapGraph& g, Label label) {
  const Object* obj = g.find(label);
  if (obj == nullptr) return std::nullopt;
  switch (obj->kind) {
    case Object::Kind::kConcrete:
      switch (obj->type) {
        case Type::kBool: return Folded::of(std::get<bool>(obj->value));
        case Type::kInt:
          return Folded::of(std::get<std::int64_t>(obj->value));
        case Type::kString:
          return Folded::of(std::get<std::string>(obj->value));
        default: return std::nullopt;
      }
    case Object::Kind::kSymbol:
    case Object::Kind::kArray:
      return std::nullopt;
    case Object::Kind::kFunc:
      return fold_func(g, *obj);
    case Object::Kind::kOp: {
      const auto l = fold(g, obj->children.at(0));
      if (!l) return std::nullopt;
      if (obj->op == OpKind::kNot) return Folded::of(!l->as_bool());
      if (obj->op == OpKind::kNegate) return Folded::of(-l->as_int());
      if (obj->op == OpKind::kTernary) {
        const auto t = fold(g, obj->children.at(1));
        const auto e = fold(g, obj->children.at(2));
        if (!t || !e) return std::nullopt;
        return l->as_bool() ? t : e;
      }
      if (obj->children.size() < 2) return std::nullopt;
      const auto r = fold(g, obj->children.at(1));
      if (!r) return std::nullopt;
      switch (obj->op) {
        case OpKind::kConcat:
          return Folded::of(l->as_string() + r->as_string());
        case OpKind::kAdd: return Folded::of(l->as_int() + r->as_int());
        case OpKind::kSub: return Folded::of(l->as_int() - r->as_int());
        case OpKind::kMul: return Folded::of(l->as_int() * r->as_int());
        case OpKind::kEqual:
        case OpKind::kIdentical: {
          if (l->kind == Folded::Kind::kString &&
              r->kind == Folded::Kind::kString) {
            return Folded::of(l->s == r->s);
          }
          return Folded::of(l->as_int() == r->as_int());
        }
        case OpKind::kNotEqual:
        case OpKind::kNotIdentical: {
          if (l->kind == Folded::Kind::kString &&
              r->kind == Folded::Kind::kString) {
            return Folded::of(l->s != r->s);
          }
          return Folded::of(l->as_int() != r->as_int());
        }
        case OpKind::kLess: return Folded::of(l->as_int() < r->as_int());
        case OpKind::kGreater: return Folded::of(l->as_int() > r->as_int());
        case OpKind::kLessEqual:
          return Folded::of(l->as_int() <= r->as_int());
        case OpKind::kGreaterEqual:
          return Folded::of(l->as_int() >= r->as_int());
        case OpKind::kAnd:
          return Folded::of(l->as_bool() && r->as_bool());
        case OpKind::kOr: return Folded::of(l->as_bool() || r->as_bool());
        case OpKind::kXor:
          return Folded::of(l->as_bool() != r->as_bool());
        default: return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

// --- the differential harness ----------------------------------------------

// Interprets `php` (concrete straight-line code), folds variable `var`,
// and asserts Z3 proves the translation equal to the folded value.
void expect_translation_matches(const std::string& php,
                                const std::string& var) {
  SourceManager sources;
  DiagnosticSink diags;
  const FileId id = sources.add_file("d.php", "<?php\n" + php);
  Arena arena;
  const phpast::PhpFile file =
      phpparse::parse_php(*sources.file(id), diags, arena);
  ASSERT_FALSE(diags.has_errors()) << diags.render(sources);
  const Program program = build_program({&file});
  Interpreter interp(program, diags);
  AnalysisRoot root;
  root.file = &file;
  const InterpResult result = interp.run(root);
  ASSERT_EQ(result.envs.size(), 1u) << "differential inputs must be linear";

  const Label label = result.envs[0].get_map(var);
  ASSERT_NE(label, kNoLabel) << var;
  const auto folded = fold(result.graph, label);
  ASSERT_TRUE(folded.has_value())
      << "not concretely foldable: " << to_sexpr(result.graph, label);

  smt::Checker checker;
  Translator trl(checker, result.graph);
  z3::context& ctx = checker.ctx();
  z3::expr disagreement = ctx.bool_val(false);
  switch (folded->kind) {
    case Folded::Kind::kBool:
      disagreement = trl.translate(label, Type::kBool) != ctx.bool_val(folded->b);
      break;
    case Folded::Kind::kInt:
      disagreement = trl.translate(label, Type::kInt) !=
                     ctx.int_val(static_cast<std::int64_t>(folded->i));
      break;
    case Folded::Kind::kString:
      disagreement =
          trl.translate(label, Type::kString) != ctx.string_val(folded->s);
      break;
  }
  EXPECT_EQ(checker.check(disagreement).result, smt::SatResult::kUnsat)
      << php << "\n  object: " << to_sexpr(result.graph, label)
      << "\n  folded: " << folded->as_string();
}

struct Case {
  const char* name;
  const char* php;
  const char* var;
};

class Differential : public ::testing::TestWithParam<Case> {};

TEST_P(Differential, TranslationAgreesWithConcreteSemantics) {
  expect_translation_matches(GetParam().php, GetParam().var);
}

const Case kCases[] = {
    {"Concat", "$x = 'up' . 'load' . '.php';", "x"},
    {"ConcatIntCoercion", "$x = 'v' . 42;", "x"},
    {"Arith", "$x = (3 + 4) * 2 - 5;", "x"},
    {"Strlen", "$x = strlen('hello.php');", "x"},
    {"StrlenOfConcat", "$x = strlen('a' . 'bc');", "x"},
    {"SubstrTwoArg", "$x = substr('hello.php', 5);", "x"},
    {"SubstrThreeArg", "$x = substr('abcdef', 1, 3);", "x"},
    {"SubstrNegativeStart", "$x = substr('x.php', -4);", "x"},
    {"Strpos", "$x = strpos('abcdef', 'cd');", "x"},
    {"IntvalString", "$x = intval('42');", "x"},
    {"IntvalConcat", "$x = intval('4' . '2');", "x"},
    {"StrReplaceSingle", "$x = str_replace('tmp', 'www', '/tmp/up');", "x"},
    {"EqualStrings", "$x = ('php' == 'php');", "x"},
    {"NotEqualStrings", "$x = ('php' != 'png');", "x"},
    {"EqualInts", "$x = (3 + 4 == 7);", "x"},
    {"Comparison", "$x = (strlen('abc') > 2);", "x"},
    {"LogicAnd", "$x = (1 < 2 && 'a' == 'a');", "x"},
    {"LogicOr", "$x = (1 > 2 || 3 > 2);", "x"},
    {"LogicNotInt", "$x = !0;", "x"},
    {"LogicNotString", "$x = !'nonempty';", "x"},
    {"TernaryTrue", "$x = (2 > 1) ? 'yes' : 'no';", "x"},
    {"TernaryFalse", "$x = (1 > 2) ? 'yes' : 'no';", "x"},
    {"IdentityChain", "$x = strtolower(trim('abc'));", "x"},
    {"BasenameNoSlash", "$x = basename('file.php');", "x"},
    {"EmptyOfEmptyString", "$x = empty('');", "x"},
    {"EmptyOfValue", "$x = empty('x');", "x"},
    {"ChainedVariables",
     "$a = 'dir/'; $b = $a . 'name'; $x = $b . '.png';", "x"},
    {"MixedPipeline",
     "$n = 'photo.jpeg'; $x = substr($n, 0, 5) . '-' . strlen($n);", "x"},
    {"NestedCalls", "$x = strlen(substr('abcdefgh', 2, 4));", "x"},
    {"CompoundConcat", "$x = 'a'; $x .= 'b'; $x .= 'c';", "x"},
    {"SuffixPipeline",
     "$name = 'shell' . '.' . 'php'; $x = substr($name, -4);", "x"},
    {"BoolToInt", "$x = intval(3 == 3);", "x"},
};

INSTANTIATE_TEST_SUITE_P(Semantics, Differential, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace uchecker::core
