// Tests for finding provenance: taint-path extraction over the heap
// graph, branch-guard extraction, Z3 witness decoding, fingerprints,
// and the end-to-end evidence bundle on detector findings (including
// the corpus-wide acceptance loop and SARIF round-trips).
#include "core/heapgraph/evidence.h"

#include <gtest/gtest.h>

#include <chrono>

#include "core/detector/detector.h"
#include "core/detector/report_io.h"
#include "core/vulnmodel/vulnmodel.h"
#include "corpus/corpus.h"
#include "phpparse/parser.h"
#include "support/diag.h"
#include "support/sarif_export.h"
#include "support/source.h"

namespace uchecker::core {
namespace {

// Parses one PHP snippet, runs the interpreter and the vulnerability
// model with evidence collection on.
struct EvidenceRun {
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // declared before files: ASTs live here
  std::vector<phpast::PhpFile> files;
  Program program;
  InterpResult exec;
  smt::Checker checker;
  VulnModelResult result;

  explicit EvidenceRun(const std::string& src, VulnModelOptions options = {}) {
    options.collect_evidence = true;
    const FileId id = sources.add_file("t.php", "<?php\n" + src);
    arenas.emplace_back();
    files.push_back(phpparse::parse_php(*sources.file(id), diags, arenas.back()));
    std::vector<const phpast::PhpFile*> ptrs{&files[0]};
    program = build_program(ptrs);
    Interpreter interp(program, diags);
    AnalysisRoot root;
    root.file = &files[0];
    exec = interp.run(root);
    result = check_sinks(exec, checker, options);
  }
};

Application one_file_app(const std::string& php) {
  Application app;
  app.name = "test-app";
  app.files.push_back(AppFile{"index.php", "<?php\n" + php});
  return app;
}

// --- taint-path extraction -------------------------------------------

TEST(Evidence, TaintPathWalksSourceToSink) {
  EvidenceRun r("move_uploaded_file($_FILES['f']['tmp_name'], "
                "'/www/' . $_FILES['f']['name']);");
  ASSERT_TRUE(r.result.vulnerable);
  const SinkVerdict& v = r.result.verdicts[0];
  ASSERT_FALSE(v.taint_path.empty());
  // The first hop is the $_FILES-tainted source symbol.
  EXPECT_EQ(v.taint_path.front().kind, Object::Kind::kSymbol);
  EXPECT_NE(v.taint_path.front().description.find("s_files_f"),
            std::string::npos);
  // Every hop reaches files taint by construction.
  for (const TaintHop& hop : v.taint_path) {
    EXPECT_TRUE(r.exec.graph.reaches_files_taint(hop.label));
  }
}

TEST(Evidence, TaintPathHopsAreAnchored) {
  EvidenceRun r(R"(
$name = $_FILES['up']['name'];
$dst = '/var/www/' . $name;
move_uploaded_file($_FILES['up']['tmp_name'], $dst);
)");
  ASSERT_TRUE(r.result.vulnerable);
  for (const TaintHop& hop : r.result.verdicts[0].taint_path) {
    EXPECT_TRUE(hop.loc.valid());
    EXPECT_GT(hop.loc.line, 0u);
  }
}

TEST(Evidence, TaintPathEmptyForUntaintedNode) {
  EvidenceRun r("move_uploaded_file('/tmp/x', '/www/y.php');");
  ASSERT_FALSE(r.result.verdicts.empty());
  const SinkVerdict& v = r.result.verdicts[0];
  EXPECT_FALSE(v.taint_ok);
  // No taint, no path — extract_taint_path guards on reachability.
  EXPECT_TRUE(v.taint_path.empty());
}

// --- guard extraction ------------------------------------------------

TEST(Evidence, GuardsComeOutInProgramOrder) {
  EvidenceRun r(R"(
if ($_FILES['f']['size'] > 10) {
  if ($_FILES['f']['size'] < 1000000) {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
  }
}
)");
  ASSERT_TRUE(r.result.vulnerable);
  const std::vector<PathGuard>& guards = r.result.verdicts[0].guards;
  ASSERT_EQ(guards.size(), 2u);
  EXPECT_NE(guards[0].sexpr.find(">"), std::string::npos);
  EXPECT_NE(guards[1].sexpr.find("<"), std::string::npos);
  EXPECT_LE(guards[0].loc.line, guards[1].loc.line);
}

TEST(Evidence, UnguardedPathHasNoGuards) {
  EvidenceRun r("move_uploaded_file($_FILES['f']['tmp_name'], "
                "'/w/' . $_FILES['f']['name']);");
  ASSERT_TRUE(r.result.vulnerable);
  EXPECT_TRUE(r.result.verdicts[0].guards.empty());
}

// --- witness decoding ------------------------------------------------

TEST(Evidence, DecodeZ3ValueStringForms) {
  EXPECT_EQ(decode_z3_value("\"php\""), "php");
  EXPECT_EQ(decode_z3_value("\"a\"\"b\""), "a\"b");  // SMT-LIB quote-quote
  EXPECT_EQ(decode_z3_value("\"a\\x2eb\""), "a.b");
  EXPECT_EQ(decode_z3_value("\"\\u{2e}\""), ".");
  // Non-string renderings pass through unchanged.
  EXPECT_EQ(decode_z3_value("42"), "42");
  EXPECT_EQ(decode_z3_value("true"), "true");
}

TEST(Evidence, DecodeWitnessMultiVariableModel) {
  EvidenceRun r(R"(
if (strlen($_FILES['f']['name']) > 3 && $_FILES['f']['size'] < 4096) {
  move_uploaded_file($_FILES['f']['tmp_name'], '/up/' . $_FILES['f']['name']);
}
)");
  ASSERT_TRUE(r.result.vulnerable);
  const AttackWitness& attack = r.result.verdicts[0].attack;
  ASSERT_TRUE(attack.has_model);
  // The model binds at least the extension symbol; every binding is
  // decoded (raw Z3 rendering stripped of quotes/escapes).
  EXPECT_GE(attack.bindings.size(), 1u);
  bool saw_ext = false;
  for (const WitnessBinding& b : attack.bindings) {
    EXPECT_FALSE(b.symbol.empty());
    if (b.symbol.find("_ext") != std::string::npos) {
      saw_ext = true;
      EXPECT_TRUE(b.decoded == "php" || b.decoded == "php5" ||
                  b.decoded == "phtml");
    }
  }
  EXPECT_TRUE(saw_ext);
  // The reconstructed filename carries the solved extension.
  EXPECT_TRUE(attack.upload_filename.find(".php") != std::string::npos);
  // Destination is fully concrete here: "/up/" . name.
  EXPECT_EQ(attack.destination.rfind("/up/", 0), 0u);
  EXPECT_TRUE(attack.destination_complete);
}

TEST(Evidence, DecodeWitnessWithoutModelStaysEmpty) {
  const HeapGraph graph;
  const AttackWitness attack =
      decode_witness(graph, kNoLabel, {}, VulnModelOptions{});
  EXPECT_FALSE(attack.has_model);
  EXPECT_TRUE(attack.bindings.empty());
  EXPECT_TRUE(attack.upload_filename.empty());
  EXPECT_TRUE(attack.destination.empty());
}

TEST(Evidence, UnknownOutcomeCarriesNoAttack) {
  // An unsat sink keeps attack.has_model == false even with evidence on.
  EvidenceRun r("move_uploaded_file($_FILES['f']['tmp_name'], "
                "'/www/img.png');");
  ASSERT_FALSE(r.result.verdicts.empty());
  const SinkVerdict& v = r.result.verdicts[0];
  EXPECT_NE(v.constraints, smt::SatResult::kSat);
  EXPECT_FALSE(v.attack.has_model);
}

// --- fingerprints ----------------------------------------------------

TEST(Evidence, FingerprintIsStableAndWellFormed) {
  const std::string fp = finding_fingerprint("app", "move_uploaded_file",
                                             "(. \"/w/\" s_files_f_name)");
  EXPECT_EQ(fp.size(), 16u);
  for (const char c : fp) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
  // Deterministic, and sensitive to each component.
  EXPECT_EQ(fp, finding_fingerprint("app", "move_uploaded_file",
                                    "(. \"/w/\" s_files_f_name)"));
  EXPECT_NE(fp, finding_fingerprint("app2", "move_uploaded_file",
                                    "(. \"/w/\" s_files_f_name)"));
  EXPECT_NE(fp, finding_fingerprint("app", "file_put_contents",
                                    "(. \"/w/\" s_files_f_name)"));
  EXPECT_NE(fp, finding_fingerprint("app", "move_uploaded_file", "other"));
}

TEST(Evidence, FingerprintSurvivesLineChurn) {
  // Same sink, same dst term, different line numbers: identical
  // fingerprints (SARIF partialFingerprints dedup across edits).
  const Application a = one_file_app(
      "move_uploaded_file($_FILES['f']['tmp_name'], "
      "'/w/' . $_FILES['f']['name']);");
  const Application b = one_file_app(
      "\n\n\nmove_uploaded_file($_FILES['f']['tmp_name'], "
      "'/w/' . $_FILES['f']['name']);");
  Application b_renamed = b;
  b_renamed.name = "test-app";
  Detector detector;
  const ScanReport ra = detector.scan(a);
  const ScanReport rb = detector.scan(b_renamed);
  ASSERT_TRUE(ra.vulnerable());
  ASSERT_TRUE(rb.vulnerable());
  EXPECT_NE(ra.findings[0].line, rb.findings[0].line);
  EXPECT_EQ(ra.findings[0].fingerprint, rb.findings[0].fingerprint);
}

// --- detector integration -------------------------------------------

TEST(Evidence, ExplainAttachesFullBundle) {
  ScanOptions options;
  options.explain = true;
  Detector detector(options);
  const ScanReport report = detector.scan(one_file_app(R"(
if ($_FILES['f']['size'] < 1048576) {
  move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
}
)"));
  ASSERT_TRUE(report.vulnerable());
  const Finding& f = report.findings[0];
  EXPECT_FALSE(f.fingerprint.empty());
  EXPECT_EQ(f.file, "index.php");
  EXPECT_GT(f.line, 0u);
  ASSERT_FALSE(f.evidence.empty());
  ASSERT_FALSE(f.evidence.taint_path.empty());
  for (const EvidenceHop& hop : f.evidence.taint_path) {
    EXPECT_EQ(hop.file, "index.php");
    EXPECT_GT(hop.line, 0u);
    EXPECT_EQ(hop.location, "index.php:" + std::to_string(hop.line));
  }
  ASSERT_FALSE(f.evidence.guards.empty());
  EXPECT_FALSE(f.evidence.bindings.empty());
  EXPECT_NE(f.evidence.upload_filename.find(".php"), std::string::npos);
  EXPECT_FALSE(f.evidence.destination.empty());
}

TEST(Evidence, ExplainOffLeavesEvidenceEmptyAndVerdictIdentical) {
  // The zero-overhead contract: evidence off must produce the same
  // verdicts/findings minus the bundle — the JSON report differs only
  // by the absent "evidence" members.
  const Application app = one_file_app(
      "move_uploaded_file($_FILES['f']['tmp_name'], "
      "'/w/' . $_FILES['f']['name']);");
  Detector plain;
  ScanOptions explain_options;
  explain_options.explain = true;
  Detector explaining(explain_options);
  const ScanReport off = plain.scan(app);
  const ScanReport on = explaining.scan(app);

  ASSERT_TRUE(off.vulnerable());
  ASSERT_TRUE(on.vulnerable());
  ASSERT_EQ(off.findings.size(), on.findings.size());
  for (std::size_t i = 0; i < off.findings.size(); ++i) {
    EXPECT_TRUE(off.findings[i].evidence.empty());
    EXPECT_FALSE(on.findings[i].evidence.empty());
    EXPECT_EQ(off.findings[i].witness, on.findings[i].witness);
    EXPECT_EQ(off.findings[i].fingerprint, on.findings[i].fingerprint);
    EXPECT_EQ(off.findings[i].location, on.findings[i].location);
    EXPECT_EQ(off.findings[i].dst_sexpr, on.findings[i].dst_sexpr);
  }
}

// --- corpus acceptance ----------------------------------------------

TEST(Evidence, EveryVulnerableCorpusFindingCarriesProvenance) {
  ScanOptions options;
  options.explain = true;
  Detector detector(options);
  std::size_t vulnerable_apps = 0;
  for (const corpus::CorpusEntry& entry : corpus::full_corpus()) {
    const ScanReport report = detector.scan(entry.app);
    if (report.verdict != Verdict::kVulnerable) continue;
    ++vulnerable_apps;
    ASSERT_FALSE(report.findings.empty()) << entry.app.name;
    for (const Finding& f : report.findings) {
      // Source→sink chain: at least one hop, each anchored to file:line.
      ASSERT_GE(f.evidence.taint_path.size(), 1u)
          << entry.app.name << " " << f.location;
      for (const EvidenceHop& hop : f.evidence.taint_path) {
        EXPECT_FALSE(hop.file.empty())
            << entry.app.name << " " << f.location;
        EXPECT_GT(hop.line, 0u) << entry.app.name << " " << f.location;
      }
      // Decoded concrete attack filename.
      EXPECT_FALSE(f.evidence.upload_filename.empty())
          << entry.app.name << " " << f.location;
      EXPECT_FALSE(f.fingerprint.empty());
    }
    // The finding appears in SARIF passing the structural validator.
    const std::string sarif = sarif::to_json(to_sarif(report));
    std::string error;
    EXPECT_TRUE(sarif::structurally_valid(sarif, &error))
        << entry.app.name << ": " << error;
  }
  EXPECT_GT(vulnerable_apps, 0u);
}

// --- degraded scans --------------------------------------------------

TEST(Evidence, DeadlineTruncatedScanStillExportsValidSarif) {
  ScanOptions options;
  options.explain = true;
  Detector detector(options);
  // An already-expired deadline truncates the scan immediately; the
  // partial (finding-free) report must still serialize valid SARIF.
  const Application app = one_file_app(
      "move_uploaded_file($_FILES['f']['tmp_name'], "
      "'/w/' . $_FILES['f']['name']);");
  const ScanReport report =
      detector.scan(app, Deadline::after(std::chrono::milliseconds(0)));
  EXPECT_TRUE(report.deadline_exceeded);
  EXPECT_EQ(report.verdict, Verdict::kAnalysisIncomplete);
  const std::string sarif = sarif::to_json(to_sarif(report));
  std::string error;
  EXPECT_TRUE(sarif::structurally_valid(sarif, &error)) << error;
}

}  // namespace
}  // namespace uchecker::core
