// Tests for the inter-procedural function-summary layer
// (core/staticpass/summaries): SCC condensation order, recursive-SCC
// conservatism, context-insensitive facts, memoized instantiation vs.
// inlined ground truth, and the end-to-end pruning/lint behaviour that
// only summaries enable (UC107/UC108, summary_pruned roots).
#include "core/staticpass/summaries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/callgraph/callgraph.h"
#include "core/detector/detector.h"
#include "core/staticpass/absdomain.h"
#include "phpparse/parser.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::core {
namespace {

using staticpass::AbsVal;
using staticpass::FunctionFacts;
using staticpass::SummaryInstance;
using staticpass::SummaryStore;

struct Fixture {
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // declared before files: ASTs live here
  std::vector<phpast::PhpFile> files;
  Program program;
  CallGraph graph;
  SinkRegistry sinks;
  staticpass::StaticPassOptions options;
  SummaryStore store;

  explicit Fixture(const std::string& php)
      : Fixture(std::vector<std::pair<std::string, std::string>>{
            {"a.php", php}}) {}

  explicit Fixture(
      const std::vector<std::pair<std::string, std::string>>& sources_in)
      : store((build_all(sources_in), program), graph, sources, sinks,
              options) {}

 private:
  // Comma-operator helper so `store` can be constructed last in the
  // initializer list after everything it references exists.
  void build_all(
      const std::vector<std::pair<std::string, std::string>>& sources_in) {
    for (const auto& [name, content] : sources_in) {
      const FileId id = sources.add_file(name, content);
      arenas.emplace_back();
      files.push_back(
          phpparse::parse_php(*sources.file(id), diags, arenas.back()));
    }
    std::vector<const phpast::PhpFile*> ptrs;
    for (const auto& f : files) ptrs.push_back(&f);
    program = build_program(ptrs);
    graph = build_call_graph(program);
  }
};

int scc_of(const SummaryStore& store, const std::string& name) {
  const FunctionFacts* f = store.facts(name);
  return f == nullptr ? -1 : f->scc;
}

// ---------------------------------------------------------------------------
// SCC condensation.

TEST(Summaries, SccEmissionIsCalleeFirst) {
  Fixture f(R"php(<?php
function a() { b(); }
function b() { c(); }
function c() { return 1; }
)php");
  // Callees must be emitted before callers: a's SCC index is the largest.
  EXPECT_GT(scc_of(f.store, "a"), scc_of(f.store, "b"));
  EXPECT_GT(scc_of(f.store, "b"), scc_of(f.store, "c"));
  for (const FunctionFacts* facts :
       {f.store.facts("a"), f.store.facts("b"), f.store.facts("c")}) {
    ASSERT_NE(facts, nullptr);
    EXPECT_FALSE(facts->recursive);
  }
}

TEST(Summaries, MutualRecursionCondensesToOneScc) {
  Fixture f(R"php(<?php
function ping($n) { if ($n > 0) { pong($n - 1); } }
function pong($n) { if ($n > 0) { ping($n - 1); } }
function leaf() { return 2; }
)php");
  EXPECT_EQ(scc_of(f.store, "ping"), scc_of(f.store, "pong"));
  EXPECT_NE(scc_of(f.store, "ping"), scc_of(f.store, "leaf"));
  ASSERT_NE(f.store.facts("ping"), nullptr);
  EXPECT_TRUE(f.store.facts("ping")->recursive);
  EXPECT_TRUE(f.store.facts("pong")->recursive);
  EXPECT_FALSE(f.store.facts("leaf")->recursive);
  // The condensation lists the pair as one SCC with members sorted.
  bool found_pair = false;
  for (const std::vector<std::string>& scc : f.store.sccs()) {
    if (scc.size() == 2) {
      EXPECT_EQ(scc[0], "ping");
      EXPECT_EQ(scc[1], "pong");
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(Summaries, SelfLoopIsRecursive) {
  Fixture f("<?php function rec($n) { return $n > 0 ? rec($n - 1) : 0; }");
  ASSERT_NE(f.store.facts("rec"), nullptr);
  EXPECT_TRUE(f.store.facts("rec")->recursive);
}

// ---------------------------------------------------------------------------
// Context-insensitive facts.

TEST(Summaries, SinkReachabilityIsTransitive) {
  Fixture f(R"php(<?php
function outer($t, $d) { return inner($t, $d); }
function inner($t, $d) { return move_uploaded_file($t, $d); }
function clean($x) { return $x + 1; }
)php");
  const FunctionFacts* inner = f.store.facts("inner");
  const FunctionFacts* outer = f.store.facts("outer");
  const FunctionFacts* clean = f.store.facts("clean");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(clean, nullptr);
  EXPECT_TRUE(inner->has_local_sink);
  EXPECT_TRUE(inner->reaches_sink);
  EXPECT_FALSE(outer->has_local_sink);
  EXPECT_TRUE(outer->reaches_sink);
  EXPECT_FALSE(clean->reaches_sink);
  EXPECT_TRUE(f.store.function_reaches_sink("outer"));
  EXPECT_FALSE(f.store.function_reaches_sink("clean"));
  // The UC107 witness chain walks caller -> sink holder.
  ASSERT_GE(outer->sink_chain.size(), 2u);
  EXPECT_EQ(outer->sink_chain.front(), "outer");
  EXPECT_EQ(outer->sink_chain.back(), "inner");
}

TEST(Summaries, CallbackBuiltinAndDynamicCallEscape) {
  Fixture f(R"php(<?php
function uses_callback($items) { return array_map('trim', $items); }
function uses_dynamic($fn) { return $fn(); }
function plain($x) { return strlen($x); }
)php");
  ASSERT_NE(f.store.facts("uses_callback"), nullptr);
  EXPECT_TRUE(f.store.facts("uses_callback")->escapes);
  EXPECT_TRUE(f.store.facts("uses_dynamic")->escapes);
  EXPECT_FALSE(f.store.facts("plain")->escapes);
  // An escaped body might do anything, so it "reaches a sink".
  EXPECT_TRUE(f.store.function_reaches_sink("uses_callback"));
  EXPECT_TRUE(f.store.function_reaches_sink("uses_dynamic"));
  // Escape status propagates to callers like sink reachability.
  EXPECT_TRUE(staticpass::callback_builtins().contains("array_map"));
  EXPECT_FALSE(staticpass::callback_builtins().contains("strlen"));
}

TEST(Summaries, ReadsFilesPropagatesUpward) {
  Fixture f(R"php(<?php
function reader() { return $_FILES['f']['name']; }
function caller() { return reader(); }
function unrelated() { return 7; }
)php");
  EXPECT_TRUE(f.store.facts("reader")->reads_files);
  EXPECT_TRUE(f.store.facts("caller")->reads_files);
  EXPECT_FALSE(f.store.facts("unrelated")->reads_files);
}

TEST(Summaries, FactsForUnknownFunctionIsNull) {
  Fixture f("<?php function g() { return 1; }");
  EXPECT_EQ(f.store.facts("nonexistent"), nullptr);
  EXPECT_EQ(f.store.facts("strlen"), nullptr);
}

// ---------------------------------------------------------------------------
// Context-keyed instantiation.

TEST(Summaries, GuardedHelperInstantiatesSafe) {
  Fixture f(R"php(<?php
function store_upload($tmp, $name, $dir) {
    $ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
    if (!in_array($ext, array('jpg', 'png'))) { return false; }
    return move_uploaded_file($tmp, $dir . basename($name));
}
)php");
  const std::vector<AbsVal> args = {
      staticpass::files(AbsVal::Kind::kFilesData, "f"),
      staticpass::files(AbsVal::Kind::kFilesName, "f"),
      staticpass::top()};
  const SummaryInstance& inst = f.store.instantiate("store_upload", args);
  EXPECT_TRUE(inst.analyzable);
  EXPECT_TRUE(inst.all_sinks_safe);
  ASSERT_EQ(inst.sinks.size(), 1u);
}

TEST(Summaries, UnguardedHelperInstantiatesUnsafe) {
  Fixture f(R"php(<?php
function store_upload($tmp, $name, $dir) {
    return move_uploaded_file($tmp, $dir . $name);
}
)php");
  const std::vector<AbsVal> args = {
      staticpass::files(AbsVal::Kind::kFilesData, "f"),
      staticpass::files(AbsVal::Kind::kFilesName, "f"),
      staticpass::top()};
  const SummaryInstance& inst = f.store.instantiate("store_upload", args);
  EXPECT_TRUE(inst.analyzable);
  EXPECT_FALSE(inst.all_sinks_safe);
  EXPECT_FALSE(inst.reason.empty());
}

TEST(Summaries, InstantiationIsContextSensitive) {
  // The same helper is safe or unsafe depending on what flows in: with a
  // clean name the destination never carries client-chosen text.
  Fixture f(R"php(<?php
function persist($tmp, $name) {
    return move_uploaded_file($tmp, 'uploads/' . $name);
}
)php");
  const SummaryInstance& tainted = f.store.instantiate(
      "persist", {staticpass::files(AbsVal::Kind::kFilesData, "f"),
                  staticpass::files(AbsVal::Kind::kFilesName, "f")});
  EXPECT_FALSE(tainted.all_sinks_safe);
  const SummaryInstance& clean = f.store.instantiate(
      "persist", {staticpass::files(AbsVal::Kind::kFilesData, "f"),
                  staticpass::safe_atom()});
  EXPECT_TRUE(clean.all_sinks_safe);
}

TEST(Summaries, InstantiationIsMemoized) {
  Fixture f("<?php function id($x) { return $x; }");
  const std::vector<AbsVal> args = {staticpass::safe_atom()};
  (void)f.store.instantiate("id", args);
  EXPECT_EQ(f.store.stats().cache_misses, 1u);
  EXPECT_EQ(f.store.stats().cache_hits, 0u);
  const SummaryInstance& again = f.store.instantiate("id", args);
  EXPECT_EQ(f.store.stats().cache_misses, 1u);
  EXPECT_EQ(f.store.stats().cache_hits, 1u);
  EXPECT_EQ(again.return_value.kind, AbsVal::Kind::kSafeAtom);
  // A different argument tuple is a different memo entry.
  (void)f.store.instantiate("id", {staticpass::top()});
  EXPECT_EQ(f.store.stats().cache_misses, 2u);
}

TEST(Summaries, RecursiveFunctionDegradesToTop) {
  // Must terminate (no infinite instantiation) and match the symbolic
  // interpreter, which replaces recursive calls with a fresh symbol.
  Fixture f("<?php function rec($n) { return $n > 0 ? rec($n - 1) : 0; }");
  const SummaryInstance& inst =
      f.store.instantiate("rec", {staticpass::safe_atom()});
  EXPECT_FALSE(inst.analyzable);
  EXPECT_EQ(inst.return_value.kind, AbsVal::Kind::kTop);
}

TEST(Summaries, EscapedFunctionDegradesToTop) {
  Fixture f("<?php function esc($f) { return $f(); }");
  const SummaryInstance& inst =
      f.store.instantiate("esc", {staticpass::top()});
  EXPECT_FALSE(inst.analyzable);
  EXPECT_EQ(inst.return_value.kind, AbsVal::Kind::kTop);
}

TEST(Summaries, ReturnValueJoinsAllReturns) {
  Fixture f(R"php(<?php
function pick($name) {
    if (strlen($name) > 3) { return $name; }
    return 'fallback.jpg';
}
)php");
  const SummaryInstance& inst = f.store.instantiate(
      "pick", {staticpass::files(AbsVal::Kind::kFilesName, "f")});
  // join(kFilesName, kConst) = top: the caller must assume the worst.
  EXPECT_EQ(inst.return_value.kind, AbsVal::Kind::kTop);
}

// ---------------------------------------------------------------------------
// Summary vs. inlined ground truth: wrapping a body in a helper must not
// change the scan verdict (summaries only move the proof inter-procedural).

ScanReport scan_snippet(const std::string& php, bool summaries) {
  Application app;
  app.name = "snippet";
  app.files.push_back(AppFile{"snippet.php", php});
  ScanOptions options;
  options.summaries = summaries;
  return Detector(std::move(options)).scan(app);
}

TEST(Summaries, HelperWrappedVulnMatchesInlined) {
  const std::string inlined = R"php(<?php
move_uploaded_file($_FILES['f']['tmp_name'],
                   'uploads/' . $_FILES['f']['name']);
)php";
  const std::string wrapped = R"php(<?php
function persist($tmp, $name) {
    move_uploaded_file($tmp, 'uploads/' . $name);
}
persist($_FILES['f']['tmp_name'], $_FILES['f']['name']);
)php";
  for (const bool with_summaries : {true, false}) {
    EXPECT_EQ(scan_snippet(inlined, with_summaries).verdict,
              Verdict::kVulnerable);
    EXPECT_EQ(scan_snippet(wrapped, with_summaries).verdict,
              Verdict::kVulnerable);
  }
}

TEST(Summaries, HelperWrappedBenignMatchesInlinedAndPrunes) {
  // The taint is read in the root, which itself has no lexical sink; the
  // only way to prune it is to prove persist() safe at the call site.
  // (When the call's arguments are the $_FILES reads themselves, the
  // locality pass makes persist() the root and binds the arguments there
  // — intraprocedural, no summary needed; this shape forces the
  // inter-procedural path.)
  const std::string wrapped = R"php(<?php
function persist($tmp, $name) {
    $ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
    if (!in_array($ext, array('jpg', 'png'))) { return false; }
    return move_uploaded_file($tmp, 'uploads/' . basename($name));
}
$f = $_FILES['f'];
persist($f['tmp_name'], $f['name']);
)php";
  const ScanReport with = scan_snippet(wrapped, true);
  EXPECT_EQ(with.verdict, Verdict::kNotVulnerable);
  // Summaries prove the helper safe at the call site; the root prunes
  // without symbolic execution and the prune is attributed to summaries.
  EXPECT_EQ(with.pruned_roots, 1u);
  EXPECT_EQ(with.summary_pruned_roots, 1u);
  EXPECT_EQ(with.paths, 0u);
  // Without summaries the verdict is identical but costs the interpreter.
  const ScanReport without = scan_snippet(wrapped, false);
  EXPECT_EQ(without.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(without.summary_pruned_roots, 0u);
}

}  // namespace
}  // namespace uchecker::core
