// Telemetry subsystem tests: span nesting, histogram bucket semantics,
// registry thread-safety under scan_many, Chrome trace export (golden
// format check) and end-to-end phase coverage on a real scan.
#include "support/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "core/detector/detector.h"
#include "core/detector/scan_many.h"
#include "corpus/corpus.h"
#include "support/jsonlite.h"
#include "support/trace_export.h"

namespace uchecker::telemetry {
namespace {

using core::Application;
using core::AppFile;
using core::Detector;
using core::ScanOptions;
using core::ScanReport;
using core::Verdict;

// --- spans ----------------------------------------------------------------

TEST(ScanTrace, SpanNesting) {
  Telemetry telemetry;
  ScanTrace& trace = telemetry.begin_scan("app");
  const SpanId outer = trace.begin_span("scan", "app");
  const SpanId inner = trace.begin_span("parse");
  const SpanId leaf = trace.begin_span("parse.file", "a.php");
  trace.end_span(leaf);
  trace.end_span(inner);
  const SpanId sibling = trace.begin_span("locality");
  trace.end_span(sibling);
  trace.end_span(outer);

  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.spans()[0].parent, kNoSpan);
  EXPECT_EQ(trace.spans()[1].parent, outer);
  EXPECT_EQ(trace.spans()[2].parent, inner);
  EXPECT_EQ(trace.spans()[3].parent, outer);
  for (const Span& s : trace.spans()) EXPECT_FALSE(s.open);
  EXPECT_EQ(trace.spans()[2].detail, "a.php");
}

TEST(ScanTrace, EndSpanClosesOpenDescendants) {
  Telemetry telemetry;
  ScanTrace& trace = telemetry.begin_scan("app");
  const SpanId outer = trace.begin_span("scan");
  trace.begin_span("interp");
  trace.begin_span("translate");
  trace.end_span(outer);  // closes translate and interp too
  for (const Span& s : trace.spans()) EXPECT_FALSE(s.open);
}

TEST(ScanTrace, SpanScopeIsNoopOnNullTrace) {
  // The unattached fast path: must not crash, must not record anything.
  const SpanScope scope(nullptr, "parse", "x");
  EXPECT_EQ(scope.id(), kNoSpan);
}

TEST(ScanTrace, TimestampsAreMonotonic) {
  Telemetry telemetry;
  ScanTrace& trace = telemetry.begin_scan("app");
  const SpanId a = trace.begin_span("a");
  trace.end_span(a);
  const SpanId b = trace.begin_span("b");
  trace.end_span(b);
  EXPECT_LE(trace.spans()[0].start_us, trace.spans()[1].start_us);
}

TEST(ScanTrace, ProgressSamplesAreBounded) {
  Telemetry telemetry;
  ScanTrace& trace = telemetry.begin_scan("app");
  for (std::uint64_t i = 0; i < 100000; ++i) {
    trace.sample_progress(i, i * 2, i * 64);
  }
  // Decimation must keep the trace bounded no matter how hot the loop.
  EXPECT_LE(trace.progress().size(), 4096u);
  EXPECT_GE(trace.progress().size(), 1024u);
}

// --- histograms -----------------------------------------------------------

TEST(Histogram, InclusiveUpperBoundBuckets) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(1.0);   // == bound -> first bucket (Prometheus "le")
  h.observe(1.5);   // second bucket
  h.observe(2.0);   // second bucket, inclusive
  h.observe(5.0);   // third bucket
  h.observe(100.0); // overflow
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 109.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantilesBracketTheData) {
  Histogram h(MetricsRegistry::default_latency_buckets_ms());
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 250.0);  // within one bucket of the true value
}

TEST(Histogram, OverflowQuantileReportsMax) {
  Histogram h({1.0});
  h.observe(70000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 70000.0);
}

// --- registry -------------------------------------------------------------

TEST(MetricsRegistry, ReferencesAreStable) {
  MetricsRegistry m;
  Counter& c = m.counter("a");
  for (int i = 0; i < 100; ++i) m.counter("pad." + std::to_string(i));
  c.add(3);
  EXPECT_EQ(m.counter("a").value(), 3u);
  EXPECT_EQ(&m.counter("a"), &c);
}

TEST(MetricsRegistry, ConcurrentMixedAccessIsExact) {
  MetricsRegistry m;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&m] {
      for (int i = 0; i < kIters; ++i) {
        m.counter("shared").add(1);
        m.histogram("lat").observe(static_cast<double>(i % 97));
        m.gauge("g").set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(m.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(m.histogram("lat").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, ThreadSafeUnderScanMany) {
  std::vector<Application> apps;
  for (int i = 0; i < 8; ++i) {
    corpus::SynthSpec spec;
    spec.name = "fleet-" + std::to_string(i);
    spec.sequential_ifs = 1 + (i % 3);
    spec.vulnerable = (i % 2) == 0;
    apps.push_back(corpus::synth_app(spec));
  }

  Telemetry telemetry;
  ScanOptions options;
  options.telemetry = &telemetry;
  const Detector detector(options);
  const std::vector<ScanReport> reports =
      core::scan_many(detector, apps, 4);

  ASSERT_EQ(reports.size(), apps.size());
  EXPECT_EQ(telemetry.metrics().counter("scan.count").value(), apps.size());
  EXPECT_EQ(telemetry.metrics().counter("fleet.apps").value(), apps.size());
  EXPECT_EQ(telemetry.metrics().histogram("scan.seconds_ms").count(),
            apps.size());
  EXPECT_EQ(telemetry.metrics().counter("fleet.verdict.vulnerable").value() +
                telemetry.metrics()
                    .counter("fleet.verdict.not_vulnerable")
                    .value(),
            apps.size());
  EXPECT_EQ(telemetry.traces().size(), apps.size());
  // Every trace got a distinct tid and a complete, closed span tree.
  std::set<std::uint32_t> tids;
  for (const ScanTrace* t : telemetry.traces()) {
    tids.insert(t->tid());
    ASSERT_FALSE(t->spans().empty());
    EXPECT_EQ(t->spans()[0].name, "scan");
    for (const Span& s : t->spans()) EXPECT_FALSE(s.open);
  }
  EXPECT_EQ(tids.size(), apps.size());
}

// --- fleet aggregation ----------------------------------------------------

TEST(Telemetry, FleetPhaseStatsPipelineOrderFirst) {
  Telemetry telemetry;
  ScanTrace& trace = telemetry.begin_scan("app");
  for (const char* name : {"zeta", "solve", "parse", "scan"}) {
    trace.end_span(trace.begin_span(name));
  }
  const std::vector<PhaseStats> stats = telemetry.fleet_phase_stats();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats[0].phase, "scan");
  EXPECT_EQ(stats[1].phase, "parse");
  EXPECT_EQ(stats[2].phase, "solve");
  EXPECT_EQ(stats[3].phase, "zeta");
  for (const PhaseStats& s : stats) {
    EXPECT_EQ(s.count, 1u);
    EXPECT_GE(s.p95_ms, s.p50_ms);
    EXPECT_GE(s.p99_ms, s.p95_ms);
    EXPECT_GE(s.max_ms, s.p99_ms);
  }
}

TEST(Telemetry, ProgressSinkReceivesLines) {
  Telemetry telemetry;
  telemetry.emit_progress("{\"dropped\": true}");  // no sink yet: no-op
  std::vector<std::string> lines;
  telemetry.set_progress_sink(
      [&lines](const std::string& l) { lines.push_back(l); });
  telemetry.emit_progress("{\"event\": \"app_done\"}");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"event\": \"app_done\"}");
}

// --- export ---------------------------------------------------------------

TEST(TraceExport, GoldenChromeTraceFormat) {
  Telemetry telemetry;
  ScanTrace& trace = telemetry.begin_scan("golden");
  const SpanId scan = trace.begin_span("scan", "golden");
  const SpanId parse = trace.begin_span("parse");
  trace.end_span(parse);
  trace.end_span(scan);
  trace.sample_progress(2, 10, 256);
  trace.record_solver_call(5, 1, 0, false, "sat");
  trace.record_event("deadline_exceeded", "during parse");

  ChromeTraceOptions options;
  options.zero_times = true;
  const std::string json = to_chrome_trace_json(telemetry, options);
  const std::string expected =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "  {\"name\": \"thread_name\", \"cat\": \"__metadata\", \"ph\": \"M\", "
      "\"ts\": 0, \"pid\": 1, \"tid\": 1, \"args\": {\"name\": "
      "\"golden\"}},\n"
      "  {\"name\": \"scan\", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": 0, "
      "\"pid\": 1, \"tid\": 1, \"dur\": 0, \"args\": {\"detail\": "
      "\"golden\"}},\n"
      "  {\"name\": \"parse\", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": 0, "
      "\"pid\": 1, \"tid\": 1, \"dur\": 0, \"args\": {\"detail\": \"\"}},\n"
      "  {\"name\": \"interp.progress\", \"cat\": \"sample\", \"ph\": \"C\", "
      "\"ts\": 0, \"pid\": 1, \"tid\": 1, \"args\": {\"live_paths\": 2, "
      "\"objects\": 10, \"heap_bytes\": 256}},\n"
      "  {\"name\": \"solver.check\", \"cat\": \"solver\", \"ph\": \"X\", "
      "\"ts\": 0, \"pid\": 1, \"tid\": 1, \"dur\": 0, \"args\": "
      "{\"attempts\": 1, \"escalations\": 0, \"deadline_exceeded\": false, "
      "\"result\": \"sat\"}},\n"
      "  {\"name\": \"deadline_exceeded\", \"cat\": \"event\", \"ph\": \"i\", "
      "\"ts\": 0, \"pid\": 1, \"tid\": 1, \"s\": \"t\", \"args\": "
      "{\"detail\": \"during parse\"}}\n"
      "]}";
  EXPECT_EQ(json, expected);
  EXPECT_TRUE(jsonlite::valid(json));
}

TEST(TraceExport, MetricsJsonIsValid) {
  Telemetry telemetry;
  telemetry.metrics().counter("scan.count").add(2);
  telemetry.metrics().gauge("load").set(0.5);
  telemetry.metrics().histogram("scan.seconds_ms").observe(12.0);
  ScanTrace& trace = telemetry.begin_scan("app");
  trace.end_span(trace.begin_span("parse"));
  const std::string json = metrics_to_json(telemetry);
  EXPECT_TRUE(jsonlite::valid(json)) << json;
  EXPECT_NE(json.find("\"scan.count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"parse\""), std::string::npos);
}

TEST(TraceExport, EmptyTelemetryIsValidJson) {
  const Telemetry telemetry;
  EXPECT_TRUE(jsonlite::valid(to_chrome_trace_json(telemetry)));
  EXPECT_TRUE(jsonlite::valid(metrics_to_json(telemetry)));
}

// --- end to end -----------------------------------------------------------

TEST(TelemetryEndToEnd, AllFivePhasesTracedOnVulnerableApp) {
  Application app;
  app.name = "upload-app";
  app.files.push_back(AppFile{
      "handler.php",
      "<?php\nmove_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
      "$_FILES['f']['name']);"});

  Telemetry telemetry;
  ScanOptions options;
  options.telemetry = &telemetry;
  const ScanReport report = Detector(options).scan(app);
  ASSERT_EQ(report.verdict, Verdict::kVulnerable);

  ASSERT_EQ(telemetry.traces().size(), 1u);
  const ScanTrace& trace = *telemetry.traces()[0];
  std::set<std::string> names;
  for (const Span& s : trace.spans()) names.insert(s.name);
  for (const char* phase :
       {"scan", "parse", "parse.file", "locality", "root", "interp",
        "translate", "solve"}) {
    EXPECT_TRUE(names.count(phase)) << "missing span: " << phase;
  }

  // Per-root child structure: interp/translate/solve hang under "root",
  // which hangs under "scan".
  const auto find_span = [&trace](std::string_view name) -> const Span& {
    const auto it =
        std::find_if(trace.spans().begin(), trace.spans().end(),
                     [name](const Span& s) { return s.name == name; });
    EXPECT_NE(it, trace.spans().end());
    return *it;
  };
  const Span& scan_span = find_span("scan");
  const Span& root_span = find_span("root");
  const Span& interp_span = find_span("interp");
  EXPECT_EQ(scan_span.parent, kNoSpan);
  EXPECT_EQ(root_span.parent, scan_span.id);
  EXPECT_EQ(interp_span.parent, root_span.id);
  for (const Span& s : trace.spans()) EXPECT_FALSE(s.open);

  // Solver instrumentation fired and the fleet view sees every phase.
  ASSERT_FALSE(trace.solver_calls().empty());
  EXPECT_EQ(trace.solver_calls().back().result, "sat");
  EXPECT_GE(telemetry.metrics().counter("solver.checks").value(), 1u);
  EXPECT_EQ(telemetry.metrics().counter("scan.count").value(), 1u);
  std::set<std::string> phases;
  for (const PhaseStats& s : telemetry.fleet_phase_stats()) {
    phases.insert(s.phase);
  }
  for (const char* phase : {"scan", "parse", "locality", "interp",
                            "translate", "solve"}) {
    EXPECT_TRUE(phases.count(phase)) << "missing phase stats: " << phase;
  }

  // The whole trace exports to valid Chrome trace JSON.
  EXPECT_TRUE(jsonlite::valid(to_chrome_trace_json(telemetry)));
}

TEST(TelemetryEndToEnd, UnattachedScanRecordsNothing) {
  Application app;
  app.name = "plain";
  app.files.push_back(AppFile{"a.php", "<?php\necho 'hi';"});
  Telemetry telemetry;  // exists but NOT attached to options
  const ScanReport report = Detector().scan(app);
  EXPECT_EQ(report.verdict, Verdict::kNotVulnerable);
  EXPECT_TRUE(telemetry.traces().empty());
  EXPECT_TRUE(telemetry.metrics().counters().empty());
}

}  // namespace
}  // namespace uchecker::telemetry
