#include "support/source.h"

#include <gtest/gtest.h>

#include "support/diag.h"

namespace uchecker {
namespace {

TEST(SourceFile, LineCountAndAccess) {
  SourceManager sm;
  const FileId id = sm.add_file("t.php", "line1\nline2\nline3");
  const SourceFile* f = sm.file(id);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line_count(), 3u);
  EXPECT_EQ(f->line(1), "line1");
  EXPECT_EQ(f->line(3), "line3");
  EXPECT_EQ(f->line(0), "");
  EXPECT_EQ(f->line(4), "");
}

TEST(SourceFile, TrailingNewline) {
  SourceManager sm;
  const SourceFile* f = sm.file(sm.add_file("t.php", "a\nb\n"));
  EXPECT_EQ(f->line_count(), 2u);
  EXPECT_EQ(f->line(2), "b");
}

TEST(SourceFile, CrLfLines) {
  SourceManager sm;
  const SourceFile* f = sm.file(sm.add_file("t.php", "a\r\nb\r\n"));
  EXPECT_EQ(f->line(1), "a");
  EXPECT_EQ(f->line(2), "b");
}

TEST(SourceFile, LocForOffset) {
  SourceManager sm;
  const SourceFile* f = sm.file(sm.add_file("t.php", "abc\ndef\n"));
  const SourceLoc start = f->loc_for_offset(0);
  EXPECT_EQ(start.line, 1u);
  EXPECT_EQ(start.column, 1u);
  const SourceLoc mid = f->loc_for_offset(5);  // 'e'
  EXPECT_EQ(mid.line, 2u);
  EXPECT_EQ(mid.column, 2u);
  const SourceLoc past = f->loc_for_offset(100);
  EXPECT_EQ(past.line, 3u);  // clamped to end
}

TEST(SourceFile, LocCountSkipsBlanksAndComments) {
  SourceManager sm;
  const SourceFile* f = sm.file(sm.add_file("t.php",
                                            "<?php\n"
                                            "\n"
                                            "// comment\n"
                                            "# comment\n"
                                            "/* block */\n"
                                            " * continuation\n"
                                            "$x = 1;\n"));
  EXPECT_EQ(f->loc_count(), 2u);  // "<?php" and "$x = 1;"
}

TEST(SourceManager, FileLookup) {
  SourceManager sm;
  const FileId a = sm.add_file("a.php", "x");
  const FileId b = sm.add_file("b.php", "y");
  EXPECT_NE(a.value, b.value);
  EXPECT_EQ(sm.file_by_name("b.php")->id(), b);
  EXPECT_EQ(sm.file_by_name("missing.php"), nullptr);
  EXPECT_EQ(sm.file(FileId{}), nullptr);
  EXPECT_EQ(sm.file(FileId{99}), nullptr);
}

TEST(SourceManager, Describe) {
  SourceManager sm;
  const FileId id = sm.add_file("a.php", "x\ny\n");
  EXPECT_EQ(sm.describe(SourceLoc{id, 2, 1}), "a.php:2:1");
  EXPECT_EQ(sm.describe(SourceLoc{}), "<unknown>");
}

TEST(SourceManager, TotalLoc) {
  SourceManager sm;
  sm.add_file("a.php", "$a = 1;\n$b = 2;\n");
  sm.add_file("b.php", "$c = 3;\n");
  EXPECT_EQ(sm.total_loc(), 3u);
}

TEST(DiagnosticSink, CountsErrors) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.has_errors());
  sink.warning({}, "w");
  EXPECT_FALSE(sink.has_errors());
  sink.error({}, "e1");
  sink.error({}, "e2");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 2u);
  EXPECT_EQ(sink.diagnostics().size(), 3u);
}

TEST(DiagnosticSink, Render) {
  SourceManager sm;
  const FileId id = sm.add_file("a.php", "x\n");
  DiagnosticSink sink;
  sink.error(SourceLoc{id, 1, 2}, "bad token");
  EXPECT_EQ(sink.render(sm), "a.php:1:2: error: bad token\n");
}

}  // namespace
}  // namespace uchecker
