// Robustness properties: the lexer and parser must never crash, hang, or
// fail to terminate on arbitrary byte-mutated input — a scanner that
// dies on the first malformed plugin file is useless for crawling a
// plugin repository (the paper scanned 9,160 plugins).
#include <gtest/gtest.h>

#include "core/detector/detector.h"
#include "phpparse/parser.h"

namespace uchecker {
namespace {

// Deterministic PRNG (tests must not depend on seed ordering).
class Lcg {
 public:
  explicit Lcg(unsigned seed) : state_(seed * 2654435761u + 17u) {}
  unsigned next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_ >> 8;
  }
  unsigned next(unsigned bound) { return bound == 0 ? 0 : next() % bound; }

 private:
  unsigned state_;
};

const char* kBaseProgram = R"php(<?php
/* A representative upload handler used as the mutation base. */
function handle_upload($field) {
    $updir = wp_upload_dir();
    $file = $_FILES[$field];
    $ext = strtolower(pathinfo($file['name'], PATHINFO_EXTENSION));
    $allowed = array('jpg', 'png', "gif");
    if (!in_array($ext, $allowed)) {
        wp_die("rejected: $ext");
    }
    $dest = $updir['basedir'] . '/media/' . basename($file['name']);
    if (move_uploaded_file($file['tmp_name'], $dest)) {
        return $dest;
    }
    return false;
}
echo handle_upload('attachment') ? 'ok' : 'failed';
)php";

std::string mutate(unsigned seed) {
  Lcg rng(seed);
  std::string src = kBaseProgram;
  const unsigned mutations = 1 + rng.next(12);
  for (unsigned i = 0; i < mutations && !src.empty(); ++i) {
    const unsigned pos = rng.next(static_cast<unsigned>(src.size()));
    switch (rng.next(4)) {
      case 0:  // flip a byte
        src[pos] = static_cast<char>(rng.next(256));
        break;
      case 1:  // delete a span
        src.erase(pos, 1 + rng.next(8));
        break;
      case 2:  // duplicate a span
        src.insert(pos, src.substr(pos, 1 + rng.next(8)));
        break;
      default: {  // insert syntax-ish noise
        static const char* kNoise[] = {"'", "\"", "{", "}", "(", ")",
                                       "$",  "?>", "<?php", "/*", "*/",
                                       "\\", ";;", "<<<EOT\n"};
        src.insert(pos, kNoise[rng.next(sizeof(kNoise) / sizeof(*kNoise))]);
        break;
      }
    }
  }
  return src;
}

class MutationRobustness : public ::testing::TestWithParam<unsigned> {};

TEST_P(MutationRobustness, PipelineNeverCrashes) {
  const std::string src = mutate(GetParam());
  // Full pipeline: mutated files must produce a report, not a crash.
  core::Application app;
  app.name = "mutated";
  app.files.push_back(core::AppFile{"m.php", src});
  core::ScanOptions options;
  options.budget.max_paths = 2048;
  options.budget.max_objects = 100'000;
  const core::ScanReport report = core::Detector(options).scan(app);
  // Any verdict is acceptable; the property is termination + a report.
  (void)report;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationRobustness,
                         ::testing::Range(1u, 101u));  // 100 mutants

TEST(Robustness, PathologicalInputs) {
  const std::string cases[] = {
      "",
      "<?php",
      "<?php ",
      "<?",
      "no php here at all",
      "<?php ?><?php ?><?php",
      "<?php ((((((((((",
      "<?php ))))))))))",
      "<?php $",
      "<?php $a = 'unterminated",
      "<?php \"unterminated $interp",
      "<?php /* unterminated",
      "<?php <<<EOT\nno terminator",
      "<?php if if if if",
      "<?php function () {}{}{}",
      "<?php \x00\x01\x02\xff",
      std::string(100000, '('),
      "<?php " + std::string(50000, 'a') + ";",
      "<?php $a" + std::string(5000, '[') + "0" + std::string(5000, ']') + ";",
  };
  for (const std::string& src : cases) {
    core::Application app;
    app.name = "pathological";
    app.files.push_back(core::AppFile{"p.php", src});
    core::ScanOptions options;
    options.budget.max_paths = 512;
    (void)core::Detector(options).scan(app);
  }
  SUCCEED();
}

TEST(Robustness, DeeplyNestedExpressions) {
  // Deep but bounded nesting must not blow the parser's stack.
  std::string expr = "1";
  for (int i = 0; i < 2000; ++i) expr = "(" + expr + " + 1)";
  core::Application app;
  app.name = "deep";
  app.files.push_back(core::AppFile{"d.php", "<?php $x = " + expr + ";"});
  (void)core::Detector().scan(app);
  SUCCEED();
}

TEST(Robustness, ManySmallFiles) {
  core::Application app;
  app.name = "many-files";
  for (int i = 0; i < 300; ++i) {
    app.files.push_back(core::AppFile{
        "f" + std::to_string(i) + ".php",
        "<?php function fn_" + std::to_string(i) + "() { return " +
            std::to_string(i) + "; }\n"});
  }
  app.files.push_back(core::AppFile{
      "up.php",
      "<?php move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
      "$_FILES['f']['name']);"});
  const core::ScanReport report = core::Detector().scan(app);
  EXPECT_EQ(report.verdict, core::Verdict::kVulnerable);
}

}  // namespace
}  // namespace uchecker
