// Robustness properties: the lexer and parser must never crash, hang, or
// fail to terminate on arbitrary byte-mutated input — a scanner that
// dies on the first malformed plugin file is useless for crawling a
// plugin repository (the paper scanned 9,160 plugins).
#include <gtest/gtest.h>

#include <chrono>

#include "core/detector/detector.h"
#include "core/detector/scan_many.h"
#include "phpparse/parser.h"
#include "support/deadline.h"
#include "support/fault_injector.h"

namespace uchecker {
namespace {

// Deterministic PRNG (tests must not depend on seed ordering).
class Lcg {
 public:
  explicit Lcg(unsigned seed) : state_(seed * 2654435761u + 17u) {}
  unsigned next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_ >> 8;
  }
  unsigned next(unsigned bound) { return bound == 0 ? 0 : next() % bound; }

 private:
  unsigned state_;
};

const char* kBaseProgram = R"php(<?php
/* A representative upload handler used as the mutation base. */
function handle_upload($field) {
    $updir = wp_upload_dir();
    $file = $_FILES[$field];
    $ext = strtolower(pathinfo($file['name'], PATHINFO_EXTENSION));
    $allowed = array('jpg', 'png', "gif");
    if (!in_array($ext, $allowed)) {
        wp_die("rejected: $ext");
    }
    $dest = $updir['basedir'] . '/media/' . basename($file['name']);
    if (move_uploaded_file($file['tmp_name'], $dest)) {
        return $dest;
    }
    return false;
}
echo handle_upload('attachment') ? 'ok' : 'failed';
)php";

std::string mutate(unsigned seed) {
  Lcg rng(seed);
  std::string src = kBaseProgram;
  const unsigned mutations = 1 + rng.next(12);
  for (unsigned i = 0; i < mutations && !src.empty(); ++i) {
    const unsigned pos = rng.next(static_cast<unsigned>(src.size()));
    switch (rng.next(4)) {
      case 0:  // flip a byte
        src[pos] = static_cast<char>(rng.next(256));
        break;
      case 1:  // delete a span
        src.erase(pos, 1 + rng.next(8));
        break;
      case 2:  // duplicate a span
        src.insert(pos, src.substr(pos, 1 + rng.next(8)));
        break;
      default: {  // insert syntax-ish noise
        static const char* kNoise[] = {"'", "\"", "{", "}", "(", ")",
                                       "$",  "?>", "<?php", "/*", "*/",
                                       "\\", ";;", "<<<EOT\n"};
        src.insert(pos, kNoise[rng.next(sizeof(kNoise) / sizeof(*kNoise))]);
        break;
      }
    }
  }
  return src;
}

class MutationRobustness : public ::testing::TestWithParam<unsigned> {};

TEST_P(MutationRobustness, PipelineNeverCrashes) {
  const std::string src = mutate(GetParam());
  // Full pipeline: mutated files must produce a report, not a crash.
  core::Application app;
  app.name = "mutated";
  app.files.push_back(core::AppFile{"m.php", src});
  core::ScanOptions options;
  options.budget.max_paths = 2048;
  options.budget.max_objects = 100'000;
  const core::ScanReport report = core::Detector(options).scan(app);
  // Any verdict is acceptable; the property is termination + a report.
  (void)report;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationRobustness,
                         ::testing::Range(1u, 101u));  // 100 mutants

TEST(Robustness, PathologicalInputs) {
  const std::string cases[] = {
      "",
      "<?php",
      "<?php ",
      "<?",
      "no php here at all",
      "<?php ?><?php ?><?php",
      "<?php ((((((((((",
      "<?php ))))))))))",
      "<?php $",
      "<?php $a = 'unterminated",
      "<?php \"unterminated $interp",
      "<?php /* unterminated",
      "<?php <<<EOT\nno terminator",
      "<?php if if if if",
      "<?php function () {}{}{}",
      "<?php \x00\x01\x02\xff",
      std::string(100000, '('),
      "<?php " + std::string(50000, 'a') + ";",
      "<?php $a" + std::string(5000, '[') + "0" + std::string(5000, ']') + ";",
      // Left-deep chains are built by parser loops, not recursion; they
      // must still respect the AST depth cap or downstream recursive
      // passes blow the stack on the spine.
      [] {
        std::string s = "<?php $a";
        for (int i = 0; i < 5000; ++i) s += "[0]";
        return s + ";";
      }(),
      [] {
        std::string s = "<?php $x = 1";
        for (int i = 0; i < 50000; ++i) s += "+1";
        return s + ";";
      }(),
      [] {
        std::string s = "<?php $o";
        for (int i = 0; i < 5000; ++i) s += "->p";
        return s + ";";
      }(),
  };
  for (const std::string& src : cases) {
    core::Application app;
    app.name = "pathological";
    app.files.push_back(core::AppFile{"p.php", src});
    core::ScanOptions options;
    options.budget.max_paths = 512;
    (void)core::Detector(options).scan(app);
  }
  SUCCEED();
}

TEST(Robustness, DeeplyNestedExpressions) {
  // Deep but bounded nesting must not blow the parser's stack.
  std::string expr = "1";
  for (int i = 0; i < 2000; ++i) expr = "(" + expr + " + 1)";
  core::Application app;
  app.name = "deep";
  app.files.push_back(core::AppFile{"d.php", "<?php $x = " + expr + ";"});
  (void)core::Detector().scan(app);
  SUCCEED();
}

TEST(Robustness, ManySmallFiles) {
  core::Application app;
  app.name = "many-files";
  for (int i = 0; i < 300; ++i) {
    app.files.push_back(core::AppFile{
        "f" + std::to_string(i) + ".php",
        "<?php function fn_" + std::to_string(i) + "() { return " +
            std::to_string(i) + "; }\n"});
  }
  app.files.push_back(core::AppFile{
      "up.php",
      "<?php move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
      "$_FILES['f']['name']);"});
  const core::ScanReport report = core::Detector().scan(app);
  EXPECT_EQ(report.verdict, core::Verdict::kVulnerable);
}

// ---------------------------------------------------------------------------
// Fault injection: every pipeline phase's containment path must fire.
// A fault in one app of a batch degrades that app to kAnalysisError with
// phase provenance; the other apps are untouched and the process lives.

// An upload handler that exercises every phase: parse, locality (the file
// reads $_FILES and reaches a sink), interp, translate, and solve. The
// `gated` variant whitelists extensions, so its solver query is UNSAT —
// still reaching the solve phase, but not vulnerable.
core::Application upload_app(int index, bool gated) {
  std::string src = "<?php\n$n = $_FILES['f']['name'];\n";
  src += "$ext = pathinfo($n, PATHINFO_EXTENSION);\n";
  if (gated) {
    src += "if (!in_array($ext, array('jpg', 'png'))) { exit; }\n";
  }
  src += "move_uploaded_file($_FILES['f']['tmp_name'], '/up/' . $n);\n";
  core::Application app;
  app.name = "app-" + std::to_string(index);
  app.files.push_back(core::AppFile{"u.php", std::move(src)});
  return app;
}

std::vector<core::Application> upload_batch(int count) {
  std::vector<core::Application> apps;
  for (int i = 0; i < count; ++i) apps.push_back(upload_app(i, i % 2 == 1));
  return apps;
}

class FaultInjection : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

TEST_F(FaultInjection, EachPhaseContainedInScanMany) {
  for (const char* phase :
       {"parse", "locality", "interp", "translate", "solve"}) {
    SCOPED_TRACE(phase);
    FaultInjector::instance().disarm_all();
    const std::vector<core::Application> apps = upload_batch(10);

    // Fire exactly once: one app in the batch hits the fault (arming is
    // serialized, so concurrency cannot double-fire it).
    FaultInjector::instance().arm(phase, FaultInjector::Action::kThrow,
                                  std::chrono::milliseconds{0},
                                  /*max_hits=*/1);
    const std::vector<core::ScanReport> reports =
        core::scan_many(core::Detector(), apps, 4);
    FaultInjector::instance().disarm_all();

    ASSERT_EQ(reports.size(), apps.size());
    std::size_t errored = 0;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const core::ScanReport& r = reports[i];
      if (r.verdict == core::Verdict::kAnalysisError) {
        ++errored;
        ASSERT_FALSE(r.errors.empty());
        EXPECT_EQ(r.errors[0].phase, phase) << r.errors[0].message;
        EXPECT_FALSE(r.errors[0].transient);
      } else {
        // Unaffected apps keep their normal verdicts.
        const core::Verdict expected = (i % 2 == 1)
                                           ? core::Verdict::kNotVulnerable
                                           : core::Verdict::kVulnerable;
        EXPECT_EQ(r.verdict, expected) << r.app_name;
      }
    }
    EXPECT_EQ(errored, 1u);
  }
}

TEST_F(FaultInjection, SerialScanDegradesNotDies) {
  // Single-app sanity check of the same property, without threads.
  FaultInjector::instance().arm("interp", FaultInjector::Action::kThrow,
                                std::chrono::milliseconds{0}, 1);
  const core::ScanReport report = core::Detector().scan(upload_app(0, false));
  EXPECT_EQ(report.verdict, core::Verdict::kAnalysisError);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].phase, "interp");
  EXPECT_EQ(report.errors[0].root, "u.php");
}

TEST_F(FaultInjection, VulnerableFindingSurvivesLaterFault) {
  // Two apps' worth of roots in one app: the first root finds the vuln,
  // a fault on a later phase call must not erase it. Simulated with a
  // multi-file app where the second file's root faults.
  core::Application app;
  app.name = "two-handlers";
  app.files.push_back(core::AppFile{
      "a.php",
      "<?php move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
      "$_FILES['f']['name']);"});
  app.files.push_back(core::AppFile{
      "b.php",
      "<?php move_uploaded_file($_FILES['g']['tmp_name'], '/u/' . "
      "$_FILES['g']['name']);"});
  core::ScanOptions options;
  options.vuln.stop_at_first_finding = false;
  // Skip the first two interp runs' faults... arm from the second run on.
  FaultInjector::instance().arm("solve", FaultInjector::Action::kThrow,
                                std::chrono::milliseconds{0}, 1);
  const core::ScanReport report = core::Detector(options).scan(app);
  // One root faulted at solve; the other proved the vulnerability.
  EXPECT_EQ(report.verdict, core::Verdict::kVulnerable);
  EXPECT_EQ(report.errors.size(), 1u);
}

TEST_F(FaultInjection, TransientFaultRetriedOnce) {
  FaultInjector::instance().arm(
      "interp", FaultInjector::Action::kThrowTransient,
      std::chrono::milliseconds{0}, /*max_hits=*/1);
  core::ScanManyOptions options;
  options.threads = 1;
  options.max_retries = 1;
  const std::vector<core::Application> apps{upload_app(0, false)};
  const std::vector<core::ScanReport> reports =
      core::scan_many(core::Detector(), apps, options);
  ASSERT_EQ(reports.size(), 1u);
  // First attempt failed transiently, retry succeeded.
  EXPECT_EQ(reports[0].verdict, core::Verdict::kVulnerable);
  EXPECT_EQ(FaultInjector::instance().hits("interp"), 1u);
}

TEST_F(FaultInjection, PermanentFaultNotRetried) {
  FaultInjector::instance().arm("interp", FaultInjector::Action::kThrow,
                                std::chrono::milliseconds{0}, -1);
  core::ScanManyOptions options;
  options.threads = 1;
  options.max_retries = 1;
  const std::vector<core::Application> apps{upload_app(0, false)};
  const std::vector<core::ScanReport> reports =
      core::scan_many(core::Detector(), apps, options);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, core::Verdict::kAnalysisError);
  // No retry for permanent failures: the point fired exactly once.
  EXPECT_EQ(FaultInjector::instance().hits("interp"), 1u);
}

TEST_F(FaultInjection, StallPastDeadlineReturnsPromptly) {
  FaultInjector::instance().arm("interp", FaultInjector::Action::kStall,
                                std::chrono::milliseconds{100}, 1);
  core::ScanOptions options;
  options.budget.time_limit = std::chrono::milliseconds{50};
  const auto start = std::chrono::steady_clock::now();
  const core::ScanReport report = core::Detector(options).scan(upload_app(0, false));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(report.deadline_exceeded);
  EXPECT_EQ(report.verdict, core::Verdict::kAnalysisIncomplete);
  // The stall is 2x the deadline; well under a second proves we did not
  // hang past the stall itself.
  EXPECT_LT(elapsed.count(), 1000);
}

TEST_F(FaultInjection, FleetCancellationDrainsCleanly) {
  CancellationSource cancel;
  cancel.cancel();  // cancelled before any scan starts
  core::ScanManyOptions options;
  options.threads = 4;
  options.cancel = cancel.token();
  const std::vector<core::Application> apps = upload_batch(10);
  const std::vector<core::ScanReport> reports =
      core::scan_many(core::Detector(), apps, options);
  ASSERT_EQ(reports.size(), 10u);
  for (const core::ScanReport& r : reports) {
    EXPECT_EQ(r.verdict, core::Verdict::kAnalysisError);
    ASSERT_FALSE(r.errors.empty());
    EXPECT_NE(r.errors[0].message.find("cancelled"), std::string::npos);
  }
}

TEST(DeadlineRobustness, PathExplosionBoundedByWallClock) {
  // A deliberately stalling input: 24 sequential ifs fork up to 2^24
  // paths. The path budget is set high enough that only the wall-clock
  // deadline can stop the scan.
  std::string src = "<?php\n$n = $_FILES['f']['name'];\n";
  for (int i = 0; i < 24; ++i) {
    src += "if ($_POST['a" + std::to_string(i) + "']) { $x" +
           std::to_string(i) + " = 1; }\n";
  }
  src += "move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $n);\n";
  core::Application app;
  app.name = "explode";
  app.files.push_back(core::AppFile{"e.php", std::move(src)});

  core::ScanOptions options;
  options.budget.max_paths = 100'000'000;
  options.budget.max_objects = 1'000'000'000;
  options.budget.time_limit = std::chrono::milliseconds{50};
  const auto start = std::chrono::steady_clock::now();
  const core::ScanReport report = core::Detector(options).scan(app);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(report.deadline_exceeded);
  EXPECT_EQ(report.verdict, core::Verdict::kAnalysisIncomplete);
  // Generous bound (CI machines vary), but far below the minutes a
  // full 2^24-path execution would take.
  EXPECT_LT(elapsed.count(), 5000);
}

TEST(DeadlineRobustness, UnlimitedByDefault) {
  const core::ScanReport report = core::Detector().scan(upload_app(0, false));
  EXPECT_FALSE(report.deadline_exceeded);
  EXPECT_EQ(report.verdict, core::Verdict::kVulnerable);
  EXPECT_TRUE(report.errors.empty());
}

}  // namespace
}  // namespace uchecker
