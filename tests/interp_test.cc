#include "core/interp/interp.h"

#include <gtest/gtest.h>

#include "core/heapgraph/sexpr.h"
#include "phpparse/parser.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::core {
namespace {

// Runs the interpreter over a single file's top-level body.
struct ExecRun {
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // declared before files: ASTs live here
  std::vector<phpast::PhpFile> files;
  Program program;
  InterpResult result;

  explicit ExecRun(const std::string& src, Budget budget = {}) {
    const FileId id = sources.add_file("t.php", "<?php\n" + src);
    arenas.emplace_back();
    files.push_back(phpparse::parse_php(*sources.file(id), diags, arenas.back()));
    std::vector<const phpast::PhpFile*> ptrs{&files[0]};
    program = build_program(ptrs);
    Interpreter interp(program, diags, budget);
    AnalysisRoot root;
    root.file = &files[0];
    result = interp.run(root);
  }

  // The value of variable `name` in path `path`, as an s-expression.
  [[nodiscard]] std::string value(const std::string& name,
                                  std::size_t path = 0) const {
    return to_sexpr(result.graph, result.envs.at(path).get_map(name));
  }

  [[nodiscard]] std::string reach(std::size_t path = 0) const {
    const Label cur = result.envs.at(path).cur();
    return cur == kNoLabel ? "true" : to_sexpr(result.graph, cur);
  }
};

// --- literals and variables ---------------------------------------------------

TEST(Interp, ConcreteAssignments) {
  ExecRun r("$i = 42; $f = 1.5; $s = 'x'; $b = true; $n = null;");
  ASSERT_EQ(r.result.envs.size(), 1u);
  EXPECT_EQ(r.value("i"), "42");
  EXPECT_EQ(r.value("s"), "\"x\"");
  EXPECT_EQ(r.value("b"), "true");
  EXPECT_EQ(r.value("n"), "null");
}

TEST(Interp, UninitializedVariableBecomesSymbol) {
  ExecRun r("$y = $x;");
  const Label y = r.result.envs[0].get_map("y");
  EXPECT_EQ(r.result.graph.at(y).kind, Object::Kind::kSymbol);
}

TEST(Interp, BinaryOpsBuildOpNodes) {
  ExecRun r("$z = $a + 5; $c = $s . '/tail';");
  EXPECT_EQ(r.value("z"), "(+ s_a_1 5)");
  EXPECT_EQ(r.value("c"), "(. s_s_2 \"/tail\")");
}

TEST(Interp, TypeInferenceFromConcat) {
  ExecRun r("$c = $s . 'x';");
  const Label s = r.result.envs[0].get_map("s");
  EXPECT_EQ(r.result.graph.at(s).type, Type::kString);
}

TEST(Interp, TypeInferenceFromArith) {
  ExecRun r("$c = $n + 1;");
  const Label n = r.result.envs[0].get_map("n");
  EXPECT_EQ(r.result.graph.at(n).type, Type::kInt);
}

TEST(Interp, CompoundAssignDesugars) {
  ExecRun r("$p = '/base'; $p .= '/x';");
  EXPECT_EQ(r.value("p"), "(. \"/base\" \"/x\")");
}

TEST(Interp, UnaryOps) {
  ExecRun r("$a = !$x; $b = -$y;");
  EXPECT_EQ(r.value("a"), "(NOT s_x_1)");
  EXPECT_EQ(r.value("b"), "(neg s_y_2)");
}

TEST(Interp, IncrementRebindsVariable) {
  ExecRun r("$i = 1; $i++; $j = ++$k;");
  EXPECT_EQ(r.value("i"), "(+ 1 1)");
  EXPECT_EQ(r.value("j"), "(+ s_k_1 1)");
  EXPECT_EQ(r.value("k"), "(+ s_k_1 1)");
}

TEST(Interp, TernaryBuildsNode) {
  ExecRun r("$m = $c ? 'a' : 'b';");
  EXPECT_EQ(r.value("m"), "(ternary s_c_1 \"a\" \"b\")");
  ASSERT_EQ(r.result.envs.size(), 1u);  // ternary does not fork paths
}

// --- arrays --------------------------------------------------------------------

TEST(Interp, ArrayLiteralStructureKnown) {
  ExecRun r("$a = array('x' => 1, 'y' => 2); $v = $a['y'];");
  EXPECT_EQ(r.value("v"), "2");
}

TEST(Interp, ArrayLiteralPositionalKeys) {
  ExecRun r("$a = array('p', 'q'); $v = $a[1];");
  EXPECT_EQ(r.value("v"), "\"q\"");
}

TEST(Interp, ArrayWriteCreatesNewObject) {
  ExecRun r("$a = array('x' => 1); $a['y'] = 2; $v = $a['y']; $w = $a['x'];");
  EXPECT_EQ(r.value("v"), "2");
  EXPECT_EQ(r.value("w"), "1");
}

TEST(Interp, ArrayWriteOnFreshVariable) {
  ExecRun r("$a['k'] = 'v'; $x = $a['k'];");
  EXPECT_EQ(r.value("x"), "\"v\"");
}

TEST(Interp, ArrayPushAppends) {
  ExecRun r("$a = array(); $a[] = 'first'; $a[] = 'second';");
  const Object& arr = r.result.graph.at(r.result.envs[0].get_map("a"));
  ASSERT_EQ(arr.kind, Object::Kind::kArray);
  EXPECT_EQ(arr.entries.size(), 2u);
}

TEST(Interp, UnknownIndexBecomesArrayAccessOp) {
  ExecRun r("$v = $arr[$i];");
  const Object& v = r.result.graph.at(r.result.envs[0].get_map("v"));
  ASSERT_EQ(v.kind, Object::Kind::kOp);
  EXPECT_EQ(v.op, OpKind::kArrayAccess);
  ASSERT_EQ(v.children.size(), 2u);  // (array, index), ordered
}

TEST(Interp, PropertyReadAndWrite) {
  ExecRun r("$o->name = 'x'; $v = $o->name;");
  EXPECT_EQ(r.value("v"), "\"x\"");
}

TEST(Interp, ListDestructuringFromKnownArray) {
  ExecRun r("list($a, $b) = array('u', 'v');");
  EXPECT_EQ(r.value("a"), "\"u\"");
  EXPECT_EQ(r.value("b"), "\"v\"");
}

// --- the pre-structured $_FILES model (paper §III-B4, Fig. 6) -----------------

TEST(Interp, FilesEntryIsPreStructured) {
  ExecRun r("$f = $_FILES['up']; $n = $f['name']; $t = $f['tmp_name'];");
  EXPECT_EQ(r.value("n"), "(. (. s_files_up_filename \".\") s_files_up_ext)");
  EXPECT_EQ(r.value("t"), "s_files_up_tmp");
}

TEST(Interp, FilesEntrySharedAcrossAccesses) {
  ExecRun r("$a = $_FILES['up']['name']; $b = $_FILES['up']['name'];");
  EXPECT_EQ(r.result.envs[0].get_map("a"), r.result.envs[0].get_map("b"));
}

TEST(Interp, FilesValuesAreTainted) {
  ExecRun r("$t = $_FILES['up']['tmp_name']; $d = '/www/' . $_FILES['up']['name'];");
  EXPECT_TRUE(r.result.graph.reaches_files_taint(r.result.envs[0].get_map("t")));
  EXPECT_TRUE(r.result.graph.reaches_files_taint(r.result.envs[0].get_map("d")));
}

TEST(Interp, OtherSuperglobalsNotFilesTainted) {
  ExecRun r("$p = $_POST['x']; $g = $_GET['y'];");
  EXPECT_FALSE(r.result.graph.reaches_files_taint(r.result.envs[0].get_map("p")));
  EXPECT_FALSE(r.result.graph.reaches_files_taint(r.result.envs[0].get_map("g")));
}

TEST(Interp, FilesErrorAndSizeAreInts) {
  ExecRun r("$e = $_FILES['u']['error']; $s = $_FILES['u']['size'];");
  EXPECT_EQ(r.result.graph.at(r.result.envs[0].get_map("e")).type, Type::kInt);
  EXPECT_EQ(r.result.graph.at(r.result.envs[0].get_map("s")).type, Type::kInt);
}

// --- conditionals and path forking ---------------------------------------------

TEST(Interp, IfForksTwoPaths) {
  ExecRun r("$a = 55; if ($b + $a > 10) { $a = $b - 22; } else { $a = 88; }");
  ASSERT_EQ(r.result.envs.size(), 2u);
  EXPECT_EQ(r.value("a", 0), "(- s_b_1 22)");
  EXPECT_EQ(r.reach(0), "(> (+ s_b_1 55) 10)");
  EXPECT_EQ(r.value("a", 1), "88");
  EXPECT_EQ(r.reach(1), "(NOT (> (+ s_b_1 55) 10))");
}

TEST(Interp, IfWithoutElseStillForks) {
  ExecRun r("if ($c) { $x = 1; }");
  ASSERT_EQ(r.result.envs.size(), 2u);
  EXPECT_EQ(r.value("x", 0), "1");
  EXPECT_EQ(r.result.envs[1].get_map("x"), kNoLabel);
}

TEST(Interp, ElseIfChainMakesThreePaths) {
  ExecRun r("if ($a) { $x = 1; } elseif ($b) { $x = 2; } else { $x = 3; }");
  ASSERT_EQ(r.result.envs.size(), 3u);
  EXPECT_EQ(r.value("x", 0), "1");
  EXPECT_EQ(r.value("x", 1), "2");
  EXPECT_EQ(r.value("x", 2), "3");
  // The else path's constraint is (AND (NOT a) (NOT b)).
  EXPECT_EQ(r.reach(2), "(AND (NOT s_a_1) (NOT s_b_2))");
}

TEST(Interp, NestedIfsMultiplyPaths) {
  ExecRun r("if ($a) { $x = 1; } if ($b) { $y = 2; } if ($c) { $z = 3; }");
  EXPECT_EQ(r.result.envs.size(), 8u);
  EXPECT_EQ(r.result.stats.paths, 8u);
}

TEST(Interp, ReachabilityAccumulatesWithAnd) {
  ExecRun r("if ($a) { if ($b) { $x = 1; } }");
  ASSERT_EQ(r.result.envs.size(), 3u);
  EXPECT_EQ(r.reach(0), "(AND s_a_1 s_b_2)");
}

TEST(Interp, SwitchForksPerCasePlusDefault) {
  ExecRun r(R"(switch ($m) {
    case 'a': $x = 1; break;
    case 'b': $x = 2; break;
    default: $x = 3;
})");
  ASSERT_EQ(r.result.envs.size(), 3u);
  EXPECT_EQ(r.value("x", 0), "1");
  EXPECT_EQ(r.reach(0), "(== s_m_1 \"a\")");
  // Default path carries negations of all case guards.
  EXPECT_EQ(r.reach(2), "(AND (NOT (== s_m_1 \"a\")) (NOT (== s_m_1 \"b\")))");
}

TEST(Interp, SwitchWithoutDefaultAddsFallPast) {
  ExecRun r("switch ($m) { case 1: $x = 1; break; }");
  EXPECT_EQ(r.result.envs.size(), 2u);
}

TEST(Interp, WhileForksSkipAndEnter) {
  ExecRun r("while ($i < 3) { $i = $i + 1; }");
  ASSERT_EQ(r.result.envs.size(), 2u);
}

TEST(Interp, ForeachOverKnownArrayUnrolls) {
  ExecRun r("$sum = 0; foreach (array(1, 2, 3) as $v) { $sum = $sum + $v; }");
  ASSERT_EQ(r.result.envs.size(), 1u);  // deterministic unroll, no fork
  EXPECT_EQ(r.value("sum"), "(+ (+ (+ 0 1) 2) 3)");
}

TEST(Interp, ForeachOverUnknownForks) {
  ExecRun r("foreach ($rows as $row) { $x = $row; }");
  EXPECT_EQ(r.result.envs.size(), 2u);  // skip + enter-once
}

TEST(Interp, ForeachKeyValueBinding) {
  ExecRun r("foreach (array('k' => 'v') as $key => $val) { $a = $key; $b = $val; }");
  EXPECT_EQ(r.value("a"), "\"k\"");
  EXPECT_EQ(r.value("b"), "\"v\"");
}

// --- statements controlling path status ----------------------------------------

TEST(Interp, ExitTerminatesPath) {
  ExecRun r("if ($bad) { exit; } $x = 1;");
  ASSERT_EQ(r.result.envs.size(), 2u);
  std::size_t running = 0;
  for (const Env& env : r.result.envs) {
    if (env.status() == Env::Status::kRunning) ++running;
  }
  EXPECT_EQ(running, 1u);
}

TEST(Interp, WpDieTerminatesPath) {
  ExecRun r("if ($bad) { wp_die('no'); } $x = 1;");
  std::size_t exited = 0;
  for (const Env& env : r.result.envs) {
    if (env.status() == Env::Status::kExited) ++exited;
  }
  EXPECT_EQ(exited, 1u);
}

TEST(Interp, ThrowTerminatesPath) {
  ExecRun r("if ($bad) { throw new Exception('x'); } $x = 1;");
  std::size_t exited = 0;
  for (const Env& env : r.result.envs) {
    if (env.status() == Env::Status::kExited) ++exited;
  }
  EXPECT_EQ(exited, 1u);
}

TEST(Interp, TryCatchForksHandlerPath) {
  ExecRun r("try { $x = 1; } catch (Exception $e) { $x = 2; }");
  ASSERT_EQ(r.result.envs.size(), 2u);
  EXPECT_EQ(r.value("x", 0), "1");
  EXPECT_EQ(r.value("x", 1), "2");
}

TEST(Interp, GlobalBindsSharedSymbol) {
  ExecRun r("global $wpdb; $x = $wpdb;");
  const Object& x = r.result.graph.at(r.result.envs[0].get_map("x"));
  EXPECT_EQ(x.kind, Object::Kind::kSymbol);
}

// --- user-defined function inlining ----------------------------------------------

TEST(Interp, FunctionCallInlinesBody) {
  ExecRun r(R"(
function make_path($dir, $name) {
    return $dir . '/' . $name;
}
$p = make_path('/base', $n);
)");
  EXPECT_EQ(r.value("p"), "(. (. \"/base\" \"/\") s_n_1)");
}

TEST(Interp, FunctionDefaultsApplied) {
  ExecRun r("function f($a, $b = 7) { return $a + $b; } $x = f(1);");
  EXPECT_EQ(r.value("x"), "(+ 1 7)");
}

TEST(Interp, FunctionLocalsDoNotLeak) {
  ExecRun r("function f() { $local = 5; return $local; } $x = f();");
  EXPECT_EQ(r.result.envs[0].get_map("local"), kNoLabel);
}

TEST(Interp, CallerLocalsRestoredAfterCall) {
  ExecRun r("function f($a) { $a = 99; return $a; } $a = 1; $x = f(2); $y = $a;");
  EXPECT_EQ(r.value("y"), "1");
}

TEST(Interp, FunctionForkPropagatesToCaller) {
  ExecRun r(R"(
function pick($c) {
    if ($c) { return 'yes'; }
    return 'no';
}
$v = pick($flag);
)");
  ASSERT_EQ(r.result.envs.size(), 2u);
  EXPECT_EQ(r.value("v", 0), "\"yes\"");
  EXPECT_EQ(r.value("v", 1), "\"no\"");
}

TEST(Interp, FunctionWithoutReturnYieldsNull) {
  ExecRun r("function f() { $x = 1; } $v = f();");
  EXPECT_EQ(r.value("v"), "null");
}

TEST(Interp, RecursionDegradesToSymbol) {
  ExecRun r("function rec($n) { return rec($n - 1); } $v = rec(3);");
  const Object& v = r.result.graph.at(r.result.envs[0].get_map("v"));
  EXPECT_EQ(v.kind, Object::Kind::kSymbol);
}

TEST(Interp, MethodsInlineByName) {
  ExecRun r(R"(
class Store {
    public function path($n) { return '/store/' . $n; }
}
$s = new Store();
$p = $s->path('f');
)");
  EXPECT_EQ(r.value("p"), "(. \"/store/\" \"f\")");
}

// --- sink recording (§III-C inputs) ----------------------------------------------

TEST(Interp, MoveUploadedFileRecordsSink) {
  ExecRun r("move_uploaded_file($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);");
  ASSERT_EQ(r.result.sinks.size(), 1u);
  const SinkHit& hit = r.result.sinks[0];
  EXPECT_EQ(hit.sink_name, "move_uploaded_file");
  EXPECT_TRUE(r.result.graph.reaches_files_taint(hit.src));
  EXPECT_EQ(to_sexpr(r.result.graph, hit.dst),
            "(. \"/www/\" (. (. s_files_f_filename \".\") s_files_f_ext))");
  EXPECT_EQ(hit.reachability, kNoLabel);  // top-level: unconditioned
}

TEST(Interp, FilePutContentsArgOrderSwapped) {
  ExecRun r("file_put_contents('/www/x.php', $_FILES['f']['tmp_name']);");
  ASSERT_EQ(r.result.sinks.size(), 1u);
  EXPECT_EQ(to_sexpr(r.result.graph, r.result.sinks[0].dst), "\"/www/x.php\"");
  EXPECT_TRUE(r.result.graph.reaches_files_taint(r.result.sinks[0].src));
}

TEST(Interp, SinkInsideIfCapturesReachability) {
  ExecRun r("if ($ok) { move_uploaded_file($_FILES['f']['tmp_name'], $d); }");
  ASSERT_EQ(r.result.sinks.size(), 1u);
  EXPECT_EQ(to_sexpr(r.result.graph, r.result.sinks[0].reachability), "s_ok_1");
}

TEST(Interp, SinkPerPath) {
  ExecRun r(R"(
if ($a) { $d = '/a/'; } else { $d = '/b/'; }
move_uploaded_file($_FILES['f']['tmp_name'], $d . $_FILES['f']['name']);
)");
  EXPECT_EQ(r.result.sinks.size(), 2u);  // one hit per reaching path
}

TEST(Interp, SinkCallYieldsBooleanResult) {
  ExecRun r("$ok = move_uploaded_file($_FILES['f']['tmp_name'], $d);");
  const Object& ok = r.result.graph.at(r.result.envs[0].get_map("ok"));
  EXPECT_EQ(ok.kind, Object::Kind::kFunc);
  EXPECT_EQ(ok.type, Type::kBool);
}

// --- budget ----------------------------------------------------------------------

TEST(Interp, PathBudgetExhaustionAborts) {
  Budget tight;
  tight.max_paths = 8;
  std::string many_ifs;
  for (int i = 0; i < 10; ++i) {
    many_ifs += "if ($c" + std::to_string(i) + ") { $x = " + std::to_string(i) + "; }\n";
  }
  ExecRun r(many_ifs, tight);
  EXPECT_TRUE(r.result.stats.budget_exhausted);
  EXPECT_LT(r.result.stats.paths, 1u << 10);
}

TEST(Interp, ObjectBudgetExhaustionAborts) {
  Budget tight;
  tight.max_objects = 10;
  ExecRun r("if ($a) { $x = 1; } if ($b) { $y = 2; } if ($c) { $z = 3; }", tight);
  EXPECT_TRUE(r.result.stats.budget_exhausted);
}

TEST(Interp, StatsPopulated) {
  ExecRun r("if ($a) { $x = 1; }");
  EXPECT_EQ(r.result.stats.paths, 2u);
  EXPECT_GT(r.result.stats.objects, 0u);
  EXPECT_GE(r.result.stats.peak_paths, 2u);
  EXPECT_GT(r.result.stats.env_bytes, 0u);
  EXPECT_FALSE(r.result.stats.budget_exhausted);
}


// --- include/require following ----------------------------------------------------

struct MultiFileRun {
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // declared before files: ASTs live here
  std::vector<phpast::PhpFile> files;
  Program program;
  InterpResult result;

  MultiFileRun(std::initializer_list<std::pair<std::string, std::string>> in,
               Budget budget = {}) {
    for (const auto& [name, content] : in) {
      const FileId id = sources.add_file(name, content);
      arenas.emplace_back();
      files.push_back(
          phpparse::parse_php(*sources.file(id), diags, arenas.back()));
    }
    std::vector<const phpast::PhpFile*> ptrs;
    for (const auto& f : files) ptrs.push_back(&f);
    program = build_program(ptrs);
    Interpreter interp(program, diags, budget);
    AnalysisRoot root;
    root.file = &files[0];
    result = interp.run(root);
  }
};

TEST(InterpInclude, FollowsResolvableInclude) {
  MultiFileRun r({{"main.php", "<?php\nrequire 'lib/config.php';\n$x = $setting;"},
                  {"lib/config.php", "<?php\n$setting = 'configured';"}});
  EXPECT_EQ(to_sexpr(r.result.graph, r.result.envs.at(0).get_map("x")),
            "\"configured\"");
}

TEST(InterpInclude, SinkInsideIncludedFileRecorded) {
  MultiFileRun r(
      {{"main.php", "<?php\nif ($_POST['go']) { require 'up.php'; }"},
       {"up.php",
        "<?php\nmove_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
        "$_FILES['f']['name']);"}});
  ASSERT_EQ(r.result.sinks.size(), 1u);
  // The include was conditional: reachability carries the guard.
  EXPECT_NE(r.result.sinks[0].reachability, kNoLabel);
}

TEST(InterpInclude, OnceSemantics) {
  MultiFileRun r({{"main.php",
                   "<?php\nrequire_once 'inc.php';\nrequire_once 'inc.php';\n"
                   "$x = $counter;"},
                  {"inc.php", "<?php\n$counter = 'ran';"}});
  // Second require_once yields an opaque value instead of re-executing;
  // there is exactly one path and $counter is bound once.
  EXPECT_EQ(r.result.envs.size(), 1u);
  EXPECT_EQ(to_sexpr(r.result.graph, r.result.envs.at(0).get_map("x")),
            "\"ran\"");
}

TEST(InterpInclude, CyclicIncludesTerminate) {
  MultiFileRun r({{"a.php", "<?php\n$a = 1;\ninclude 'b.php';"},
                  {"b.php", "<?php\n$b = 2;\ninclude 'a.php';"}});
  EXPECT_EQ(r.result.envs.size(), 1u);  // terminated, no explosion
}

TEST(InterpInclude, UnresolvableIncludeIsOpaque) {
  MultiFileRun r({{"main.php", "<?php\n$x = include 'not-in-program.php';"}});
  const Object& x = r.result.graph.at(r.result.envs.at(0).get_map("x"));
  EXPECT_EQ(x.kind, Object::Kind::kSymbol);
}

TEST(InterpInclude, DepthLimitStopsDeepChains) {
  Budget shallow;
  shallow.max_include_depth = 1;
  MultiFileRun r({{"main.php", "<?php\ninclude 'l1.php';\n$x = $deep;"},
                  {"l1.php", "<?php\ninclude 'l2.php';"},
                  {"l2.php", "<?php\n$deep = 'reached';"}},
                 shallow);
  // l2 was beyond the depth limit: $deep stays symbolic.
  const Object& x = r.result.graph.at(r.result.envs.at(0).get_map("x"));
  EXPECT_EQ(x.kind, Object::Kind::kSymbol);
}

// --- property: path counts are products of independent branch factors -------------

class PathCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(PathCountProperty, SequentialIfsDoublePaths) {
  const int n = GetParam();
  std::string src;
  for (int i = 0; i < n; ++i) {
    src += "if ($c" + std::to_string(i) + ") { $x" + std::to_string(i) + " = 1; }\n";
  }
  ExecRun r(src);
  EXPECT_EQ(r.result.envs.size(), 1u << n);
  // Object sharing: total objects grow far slower than paths * objects.
  EXPECT_LT(r.result.stats.objects, (1u << n) * 24u + 64u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PathCountProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10));

class SwitchFactorProperty : public ::testing::TestWithParam<int> {};

TEST_P(SwitchFactorProperty, SwitchMultipliesByCaseCount) {
  const int ways = GetParam();
  std::string src = "switch ($m) {\n";
  for (int i = 0; i < ways - 1; ++i) {
    src += "case " + std::to_string(i) + ": $x = " + std::to_string(i) + "; break;\n";
  }
  src += "default: $x = 99;\n}\n";
  ExecRun r(src);
  EXPECT_EQ(r.result.envs.size(), static_cast<std::size_t>(ways));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SwitchFactorProperty,
                         ::testing::Values(2, 3, 5, 9));

// --- property: all labels referenced by envs are valid ----------------------------

TEST(InterpProperty, EnvironmentsReferenceValidObjects) {
  ExecRun r(R"(
$a = $_FILES['f'];
if ($a['size'] > 100) { $big = true; } else { $big = false; }
$p = '/www/' . $a['name'];
if ($big) { move_uploaded_file($a['tmp_name'], $p); }
)");
  for (const Env& env : r.result.envs) {
    for (const auto& [var, label] : env.map()) {
      EXPECT_NE(r.result.graph.find(label), nullptr) << var;
    }
    if (env.cur() != kNoLabel) {
      EXPECT_NE(r.result.graph.find(env.cur()), nullptr);
    }
  }
}

}  // namespace
}  // namespace uchecker::core
