// Tests for the corpus infrastructure: the deterministic filler
// generator and the parameterized synthetic-workload generator.
#include <gtest/gtest.h>

#include "core/detector/detector.h"
#include "corpus/corpus.h"
#include "phpparse/parser.h"
#include "support/strutil.h"

namespace uchecker::corpus {
namespace {

using core::Detector;
using core::ScanReport;
using core::Verdict;

std::size_t count_loc(const std::string& content) {
  std::size_t n = 0;
  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string_view line =
        uchecker::strutil::trim(std::string_view(content).substr(start, end - start));
    if (!line.empty() && !line.starts_with("//") && !line.starts_with("#") &&
        !line.starts_with("*") && !line.starts_with("/*")) {
      ++n;
    }
    if (end == content.size()) break;
    start = end + 1;
  }
  return n;
}

bool parses_cleanly(const std::string& php) {
  SourceManager sm;
  DiagnosticSink diags;
  const FileId id = sm.add_file("t.php", php);
  Arena arena;
  (void)phpparse::parse_php(*sm.file(id), diags, arena);
  return !diags.has_errors();
}

// --- filler --------------------------------------------------------------------

TEST(Filler, Deterministic) {
  EXPECT_EQ(filler_php(500, 7, "pfx"), filler_php(500, 7, "pfx"));
  EXPECT_NE(filler_php(500, 7, "pfx"), filler_php(500, 8, "pfx"));
}

TEST(Filler, HitsLocTargetApproximately) {
  for (const std::size_t target : {100u, 500u, 2000u}) {
    const std::string php = filler_php(target, 3, "pad");
    const std::size_t loc = count_loc(php);
    EXPECT_GE(loc + 14, target) << target;
    EXPECT_LE(loc, target + 14) << target;
  }
}

TEST(Filler, ParsesCleanly) {
  EXPECT_TRUE(parses_cleanly(filler_php(3000, 42, "clean")));
}

TEST(Filler, SanitizesHyphenatedPrefixes) {
  EXPECT_TRUE(parses_cleanly(filler_php(200, 1, "my-plugin-slug")));
}

TEST(Filler, BodyVariantHasNoOpenTag) {
  const std::string body = filler_php_body(100, 5, "pfx");
  EXPECT_EQ(body.find("<?php"), std::string::npos);
  EXPECT_TRUE(parses_cleanly("<?php\n" + body));
}

TEST(Filler, ContainsNoUploadConstructs) {
  const std::string php = filler_php(5000, 9, "inert");
  EXPECT_EQ(php.find("_FILES"), std::string::npos);
  EXPECT_EQ(php.find("move_uploaded_file"), std::string::npos);
  EXPECT_EQ(php.find("file_put_contents"), std::string::npos);
}

TEST(FillerStatements, StraightLineOnly) {
  const std::string stmts = filler_statements(40, 11, "    ");
  EXPECT_TRUE(parses_cleanly("<?php\n$meta = array();\n$labels = array();\n"
                             "$totals = array();\n" +
                             stmts));
  EXPECT_EQ(stmts.find("if"), std::string::npos);
  EXPECT_EQ(stmts.find("while"), std::string::npos);
}

// --- synthetic workloads ---------------------------------------------------------

TEST(Synth, PathCountFormula) {
  for (int ifs = 1; ifs <= 6; ++ifs) {
    SynthSpec spec;
    spec.name = "t";
    spec.sequential_ifs = ifs;
    spec.filler_loc = 0;
    spec.filler_files = 0;
    const ScanReport report = Detector().scan(synth_app(spec));
    // ifs option-branches plus the sink conditional.
    EXPECT_EQ(report.paths, 1u << (ifs + 1)) << ifs;
  }
}

TEST(Synth, SwitchMultiplier) {
  SynthSpec spec;
  spec.name = "t";
  spec.sequential_ifs = 2;
  spec.switch_ways = 5;
  spec.filler_loc = 0;
  spec.filler_files = 0;
  const ScanReport report = Detector().scan(synth_app(spec));
  EXPECT_EQ(report.paths, 4u * 5u * 2u);
}

TEST(Synth, VulnerableFlagControlsVerdict) {
  SynthSpec vulnerable;
  vulnerable.name = "v";
  vulnerable.filler_loc = 0;
  vulnerable.filler_files = 0;
  EXPECT_EQ(Detector().scan(synth_app(vulnerable)).verdict,
            Verdict::kVulnerable);

  SynthSpec safe = vulnerable;
  safe.name = "s";
  safe.vulnerable = false;
  EXPECT_EQ(Detector().scan(synth_app(safe)).verdict,
            Verdict::kNotVulnerable);
}

TEST(Synth, FillerIncreasesLocNotPaths) {
  SynthSpec small;
  small.name = "t";
  small.filler_loc = 0;
  small.filler_files = 0;
  SynthSpec padded = small;
  padded.filler_loc = 2000;
  padded.filler_files = 2;
  const ScanReport a = Detector().scan(synth_app(small));
  const ScanReport b = Detector().scan(synth_app(padded));
  EXPECT_EQ(a.paths, b.paths);
  EXPECT_GT(b.total_loc, a.total_loc + 1500);
  EXPECT_LT(b.analyzed_percent, a.analyzed_percent);
}

}  // namespace
}  // namespace uchecker::corpus
