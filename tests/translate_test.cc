// Tests for the PHP -> Z3 translation rules of paper Table II. Each rule
// is verified *semantically*: we build the heap-graph value, translate,
// and let Z3 decide satisfiability of a characterizing constraint.
#include "core/translate/translate.h"

#include <gtest/gtest.h>

#include "smt/solver.h"

namespace uchecker::core {
namespace {

using smt::SatResult;

class TranslateTest : public ::testing::Test {
 protected:
  [[nodiscard]] SatResult check(const z3::expr& e) {
    return checker_.check(e).result;
  }
  [[nodiscard]] SatResult check(const std::vector<z3::expr>& es) {
    return checker_.check(es).result;
  }

  smt::Checker checker_;
  HeapGraph graph_;
};

// --- constants and symbols (Table II rows 1-2) ---------------------------------

TEST_F(TranslateTest, ConcreteStringTranslatesToStringVal) {
  const Label l = graph_.add_concrete(Value(std::string("abc")));
  Translator trl(checker_, graph_);
  const z3::expr e = trl.translate(l, Type::kString);
  EXPECT_EQ(check(e == checker_.ctx().string_val("abc")), SatResult::kSat);
  EXPECT_EQ(check(e != checker_.ctx().string_val("abc")), SatResult::kUnsat);
}

TEST_F(TranslateTest, ConcreteIntAndBool) {
  const Label i = graph_.add_concrete(Value(std::int64_t{42}));
  const Label b = graph_.add_concrete(Value(true));
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(i, Type::kInt) == 42), SatResult::kSat);
  EXPECT_EQ(check(!trl.translate(b, Type::kBool)), SatResult::kUnsat);
}

TEST_F(TranslateTest, SymbolKeepsItsName) {
  const Label s = graph_.add_symbol("s_ext", Type::kString);
  Translator trl(checker_, graph_);
  EXPECT_EQ(trl.translate(s, Type::kString).decl().name().str(), "s_ext");
}

TEST_F(TranslateTest, SameObjectTranslatesToSameTerm) {
  const Label s = graph_.add_symbol("shared", Type::kUnknown);
  Translator trl(checker_, graph_);
  const z3::expr a = trl.translate(s, Type::kString);
  const z3::expr b = trl.translate(s, Type::kString);
  EXPECT_EQ(check(a != b), SatResult::kUnsat);
}

// --- string concat (Table II row 3) ---------------------------------------------

TEST_F(TranslateTest, ConcatIsStrConcat) {
  const Label a = graph_.add_symbol("a", Type::kString);
  const Label dot = graph_.add_concrete(Value(std::string(".")));
  const Label ext = graph_.add_symbol("e", Type::kString);
  const Label name = graph_.add_op(OpKind::kConcat, Type::kString,
                                   {graph_.add_op(OpKind::kConcat, Type::kString,
                                                  {a, dot}),
                                    ext});
  Translator trl(checker_, graph_);
  const z3::expr n = trl.translate(name, Type::kString);
  // Can end with ".php":
  EXPECT_EQ(check(z3::suffixof(checker_.ctx().string_val(".php"), n)),
            SatResult::kSat);
  // If ext is "jpg" it can NOT end with ".php" (given ext has no dot —
  // here ext is literally constrained):
  const z3::expr ext_e = trl.translate(ext, Type::kString);
  EXPECT_EQ(check({z3::suffixof(checker_.ctx().string_val(".php"), n),
                   ext_e == checker_.ctx().string_val("jpg")}),
            SatResult::kUnsat);
}

TEST_F(TranslateTest, ConcatCoercesIntOperand) {
  // time() . '.php' — int func result must coerce to string.
  const Label t = graph_.add_func("time", Type::kInt, {});
  const Label suffix = graph_.add_concrete(Value(std::string(".php")));
  const Label cat = graph_.add_op(OpKind::kConcat, Type::kString, {t, suffix});
  Translator trl(checker_, graph_);
  const z3::expr e = trl.translate(cat, Type::kString);
  EXPECT_EQ(check(z3::suffixof(checker_.ctx().string_val(".php"), e)),
            SatResult::kSat);
}

// --- str_replace (row 4), intval (row 5), strpos (row 6), strlen (row 7) -------

TEST_F(TranslateTest, StrReplaceParameterOrder) {
  // str_replace('a', 'b', 'banana'): PHP arg order (search, replace,
  // subject) maps to Z3 subject.replace(search, replace).
  const Label search = graph_.add_concrete(Value(std::string("a")));
  const Label repl = graph_.add_concrete(Value(std::string("b")));
  const Label subject = graph_.add_concrete(Value(std::string("banana")));
  const Label call = graph_.add_func("str_replace", Type::kString,
                                     {search, repl, subject});
  Translator trl(checker_, graph_);
  const z3::expr e = trl.translate(call, Type::kString);
  // Z3's str.replace replaces the FIRST occurrence: "bbnana".
  EXPECT_EQ(check(e == checker_.ctx().string_val("bbnana")), SatResult::kSat);
}

TEST_F(TranslateTest, IntvalOnString) {
  const Label s = graph_.add_concrete(Value(std::string("42")));
  const Label call = graph_.add_func("intval", Type::kInt, {s});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(call, Type::kInt) == 42), SatResult::kSat);
  EXPECT_EQ(check(trl.translate(call, Type::kInt) != 42), SatResult::kUnsat);
}

TEST_F(TranslateTest, StrposIsIndexof) {
  const Label hay = graph_.add_concrete(Value(std::string("abcdef")));
  const Label needle = graph_.add_concrete(Value(std::string("cd")));
  const Label call = graph_.add_func("strpos", Type::kInt, {hay, needle});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(call, Type::kInt) == 2), SatResult::kSat);
}

TEST_F(TranslateTest, StrlenIsStrLen) {
  const Label s = graph_.add_concrete(Value(std::string("hello")));
  const Label call = graph_.add_func("strlen", Type::kInt, {s});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(call, Type::kInt) == 5), SatResult::kSat);
}

// --- logical not (row 8) --------------------------------------------------------

TEST_F(TranslateTest, NotOnBool) {
  const Label b = graph_.add_symbol("b", Type::kBool);
  const Label n = graph_.add_op(OpKind::kNot, Type::kBool, {b});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check({trl.translate(n, Type::kBool), trl.translate(b, Type::kBool)}),
            SatResult::kUnsat);
}

TEST_F(TranslateTest, NotOnIntIsZeroTest) {
  const Label i = graph_.add_symbol("i", Type::kInt);
  const Label n = graph_.add_op(OpKind::kNot, Type::kBool, {i});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check({trl.translate(n, Type::kBool),
                   trl.translate(i, Type::kInt) == 5}),
            SatResult::kUnsat);
  EXPECT_EQ(check({trl.translate(n, Type::kBool),
                   trl.translate(i, Type::kInt) == 0}),
            SatResult::kSat);
}

TEST_F(TranslateTest, NotOnStringIsEmptyTest) {
  const Label s = graph_.add_symbol("s", Type::kString);
  const Label n = graph_.add_op(OpKind::kNot, Type::kBool, {s});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check({trl.translate(n, Type::kBool),
                   trl.translate(s, Type::kString) ==
                       checker_.ctx().string_val("x")}),
            SatResult::kUnsat);
}

// --- logical AND (row 9) with mixed types ---------------------------------------

TEST_F(TranslateTest, AndMixedIntBool) {
  const Label i = graph_.add_symbol("i", Type::kInt);
  const Label b = graph_.add_symbol("b", Type::kBool);
  const Label a = graph_.add_op(OpKind::kAnd, Type::kBool, {i, b});
  Translator trl(checker_, graph_);
  // and(i, b) with i == 0 is unsatisfiable.
  EXPECT_EQ(check({trl.translate(a, Type::kBool),
                   trl.translate(i, Type::kInt) == 0}),
            SatResult::kUnsat);
}

TEST_F(TranslateTest, AndMixedStringBool) {
  const Label s = graph_.add_symbol("s", Type::kString);
  const Label b = graph_.add_symbol("b", Type::kBool);
  const Label a = graph_.add_op(OpKind::kAnd, Type::kBool, {s, b});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check({trl.translate(a, Type::kBool),
                   trl.translate(s, Type::kString) ==
                       checker_.ctx().string_val("")}),
            SatResult::kUnsat);
}

// --- logical equal (row 10) ------------------------------------------------------

TEST_F(TranslateTest, EqualSameTypes) {
  const Label a = graph_.add_symbol("a", Type::kString);
  const Label lit = graph_.add_concrete(Value(std::string("php")));
  const Label eq = graph_.add_op(OpKind::kEqual, Type::kBool, {a, lit});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check({trl.translate(eq, Type::kBool),
                   trl.translate(a, Type::kString) ==
                       checker_.ctx().string_val("jpg")}),
            SatResult::kUnsat);
}

TEST_F(TranslateTest, EqualUnknownAdoptsSiblingType) {
  const Label unk = graph_.add_symbol("u", Type::kUnknown);
  const Label lit = graph_.add_concrete(Value(std::string("zip")));
  const Label eq = graph_.add_op(OpKind::kEqual, Type::kBool, {unk, lit});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(eq, Type::kBool)), SatResult::kSat);
}

TEST_F(TranslateTest, NotEqualIsNegation) {
  const Label a = graph_.add_symbol("a", Type::kInt);
  const Label lit = graph_.add_concrete(Value(std::int64_t{3}));
  const Label ne = graph_.add_op(OpKind::kNotEqual, Type::kBool, {a, lit});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check({trl.translate(ne, Type::kBool),
                   trl.translate(a, Type::kInt) == 3}),
            SatResult::kUnsat);
}

// --- substring (rows 12-13) -------------------------------------------------------

TEST_F(TranslateTest, SubstrTwoArg) {
  const Label s = graph_.add_concrete(Value(std::string("hello.php")));
  const Label start = graph_.add_concrete(Value(std::int64_t{5}));
  const Label call = graph_.add_func("substr", Type::kString, {s, start});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(call, Type::kString) ==
                  checker_.ctx().string_val(".php")),
            SatResult::kSat);
}

TEST_F(TranslateTest, SubstrNegativeStartCountsFromEnd) {
  const Label s = graph_.add_concrete(Value(std::string("x.php")));
  const Label start = graph_.add_concrete(Value(std::int64_t{-4}));
  const Label call = graph_.add_func("substr", Type::kString, {s, start});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(call, Type::kString) ==
                  checker_.ctx().string_val(".php")),
            SatResult::kSat);
  EXPECT_EQ(check(trl.translate(call, Type::kString) !=
                  checker_.ctx().string_val(".php")),
            SatResult::kUnsat);
}

TEST_F(TranslateTest, SubstrThreeArg) {
  const Label s = graph_.add_concrete(Value(std::string("abcdef")));
  const Label start = graph_.add_concrete(Value(std::int64_t{1}));
  const Label len = graph_.add_concrete(Value(std::int64_t{3}));
  const Label call = graph_.add_func("substr", Type::kString, {s, start, len});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(call, Type::kString) ==
                  checker_.ctx().string_val("bcd")),
            SatResult::kSat);
}

// --- identity builtins and basename (row 15) ---------------------------------------

TEST_F(TranslateTest, StrtolowerIsIdentity) {
  const Label s = graph_.add_symbol("s", Type::kString);
  const Label call = graph_.add_func("strtolower", Type::kString, {s});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(call, Type::kString) !=
                  trl.translate(s, Type::kString)),
            SatResult::kUnsat);
}

TEST_F(TranslateTest, BasenameIsIdentityOnSymbolicName) {
  const Label s = graph_.add_symbol("name", Type::kString);
  const Label call = graph_.add_func("basename", Type::kString, {s});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(call, Type::kString) !=
                  trl.translate(s, Type::kString)),
            SatResult::kUnsat);
}

// --- exception rule: unknowns become fresh symbols ----------------------------------

TEST_F(TranslateTest, UnknownFuncBecomesFreshSymbol) {
  const Label call = graph_.add_func("wp_upload_dir", Type::kUnknown, {});
  Translator trl(checker_, graph_);
  const std::size_t before = trl.fallback_count();
  const z3::expr e = trl.translate(call, Type::kString);
  EXPECT_GT(trl.fallback_count(), before);
  EXPECT_EQ(check(e == checker_.ctx().string_val("anything")), SatResult::kSat);
}

TEST_F(TranslateTest, ArrayAccessFallbackIsConsistent) {
  const Label arr = graph_.add_symbol("arr", Type::kArray);
  const Label idx = graph_.add_concrete(Value(std::string("k")));
  const Label access = graph_.add_op(OpKind::kArrayAccess, Type::kUnknown,
                                     {arr, idx});
  Translator trl(checker_, graph_);
  // Same node translated twice denotes the same value.
  EXPECT_EQ(check(trl.translate(access, Type::kString) !=
                  trl.translate(access, Type::kString)),
            SatResult::kUnsat);
}

// --- ternary and truthiness ----------------------------------------------------------

TEST_F(TranslateTest, TernaryIsIte) {
  const Label c = graph_.add_symbol("c", Type::kBool);
  const Label a = graph_.add_concrete(Value(std::string("A")));
  const Label b = graph_.add_concrete(Value(std::string("B")));
  const Label t = graph_.add_op(OpKind::kTernary, Type::kString, {c, a, b});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check({trl.translate(t, Type::kString) ==
                       checker_.ctx().string_val("A"),
                   !trl.translate(c, Type::kBool)}),
            SatResult::kUnsat);
}

TEST_F(TranslateTest, TruthyOfConcreteValues) {
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.truthy(graph_.add_concrete(Value(std::int64_t{0})))),
            SatResult::kUnsat);
  EXPECT_EQ(check(trl.truthy(graph_.add_concrete(Value(std::int64_t{7})))),
            SatResult::kSat);
  EXPECT_EQ(check(trl.truthy(graph_.add_concrete(Value(std::string(""))))),
            SatResult::kUnsat);
  EXPECT_EQ(check(trl.truthy(graph_.add_concrete(Value(std::string("x"))))),
            SatResult::kSat);
}

TEST_F(TranslateTest, EmptyFuncIsNegatedTruthiness) {
  const Label s = graph_.add_symbol("s", Type::kString);
  const Label e = graph_.add_func("empty", Type::kBool, {s});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check({trl.translate(e, Type::kBool),
                   trl.translate(s, Type::kString) ==
                       checker_.ctx().string_val("full")}),
            SatResult::kUnsat);
}

// --- arithmetic guards ------------------------------------------------------------

TEST_F(TranslateTest, DivisionByZeroGuarded) {
  const Label a = graph_.add_symbol("a", Type::kInt);
  const Label zero = graph_.add_concrete(Value(std::int64_t{0}));
  const Label div = graph_.add_op(OpKind::kDiv, Type::kInt, {a, zero});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check(trl.translate(div, Type::kInt) ==
                  trl.translate(a, Type::kInt)),
            SatResult::kSat);  // guarded denominator -> well-defined term
}

TEST_F(TranslateTest, ComparisonOnInts) {
  const Label a = graph_.add_symbol("a", Type::kInt);
  const Label five = graph_.add_concrete(Value(std::int64_t{5}));
  const Label gt = graph_.add_op(OpKind::kGreater, Type::kBool, {a, five});
  Translator trl(checker_, graph_);
  EXPECT_EQ(check({trl.translate(gt, Type::kBool),
                   trl.translate(a, Type::kInt) == 3}),
            SatResult::kUnsat);
}

}  // namespace
}  // namespace uchecker::core
