#include "core/heapgraph/heapgraph.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/heapgraph/dot.h"
#include "core/heapgraph/sexpr.h"

namespace uchecker::core {
namespace {

TEST(HeapGraph, LabelsAreUniqueAndOneBased) {
  HeapGraph g;
  const Label a = g.add_concrete(Value(std::int64_t{1}));
  const Label b = g.add_symbol("s", Type::kString);
  const Label c = g.add_op(OpKind::kConcat, Type::kString, {a, b});
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);
  EXPECT_EQ(g.object_count(), 3u);
}

TEST(HeapGraph, FindReturnsNullForInvalid) {
  HeapGraph g;
  EXPECT_EQ(g.find(kNoLabel), nullptr);
  EXPECT_EQ(g.find(1), nullptr);
  g.add_concrete(Value(true));
  EXPECT_NE(g.find(1), nullptr);
  EXPECT_EQ(g.find(2), nullptr);
}

TEST(HeapGraph, ConcreteObjectTypes) {
  HeapGraph g;
  EXPECT_EQ(g.at(g.add_concrete(Value(std::monostate{}))).type, Type::kNull);
  EXPECT_EQ(g.at(g.add_concrete(Value(true))).type, Type::kBool);
  EXPECT_EQ(g.at(g.add_concrete(Value(std::int64_t{5}))).type, Type::kInt);
  EXPECT_EQ(g.at(g.add_concrete(Value(2.5))).type, Type::kFloat);
  EXPECT_EQ(g.at(g.add_concrete(Value(std::string("x")))).type, Type::kString);
}

TEST(HeapGraph, EdgeOrderPreserved) {
  HeapGraph g;
  const Label l = g.add_concrete(Value(std::int64_t{1}));
  const Label r = g.add_concrete(Value(std::int64_t{2}));
  const Label op = g.add_op(OpKind::kSub, Type::kInt, {l, r});
  const Object& obj = g.at(op);
  ASSERT_EQ(obj.children.size(), 2u);
  EXPECT_EQ(obj.children[0], l);  // left operand first
  EXPECT_EQ(obj.children[1], r);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(HeapGraph, RefineTypeIsMonotone) {
  HeapGraph g;
  const Label s = g.add_symbol("s", Type::kUnknown);
  g.refine_type(s, Type::kString);
  EXPECT_EQ(g.at(s).type, Type::kString);
  g.refine_type(s, Type::kInt);  // must not overwrite
  EXPECT_EQ(g.at(s).type, Type::kString);
}

TEST(HeapGraph, TaintPropagatesThroughOps) {
  HeapGraph g;
  const Label files = g.add_symbol("$_FILES", Type::kArray, {}, true);
  const Label idx = g.add_concrete(Value(std::string("f")));
  const Label access = g.add_op(OpKind::kArrayAccess, Type::kUnknown, {files, idx});
  const Label clean = g.add_symbol("dir", Type::kString);
  const Label concat = g.add_op(OpKind::kConcat, Type::kString, {clean, access});
  EXPECT_TRUE(g.reaches_files_taint(access));
  EXPECT_TRUE(g.reaches_files_taint(concat));
  EXPECT_FALSE(g.reaches_files_taint(clean));
  EXPECT_FALSE(g.reaches_files_taint(idx));
}

TEST(HeapGraph, TaintPropagatesThroughArrayEntries) {
  HeapGraph g;
  const Label tainted = g.add_symbol("s_tmp", Type::kString, {}, true);
  const Label arr = g.add_array({ArrayEntry{"tmp_name", false, tainted}});
  EXPECT_TRUE(g.reaches_files_taint(arr));
}

TEST(HeapGraph, MarkFilesTaintedAfterCreation) {
  HeapGraph g;
  const Label s = g.add_symbol("late", Type::kString);
  EXPECT_FALSE(g.reaches_files_taint(s));
  g.mark_files_tainted(s);
  EXPECT_TRUE(g.reaches_files_taint(s));
}

TEST(HeapGraph, MemoryAccountingGrows) {
  HeapGraph g;
  const std::size_t empty = g.memory_bytes();
  g.add_symbol("a_rather_long_symbol_name", Type::kString);
  EXPECT_GT(g.memory_bytes(), empty);
}

// --- Env --------------------------------------------------------------------

TEST(Env, MapOperations) {
  Env env;
  EXPECT_EQ(env.get_map("a"), kNoLabel);
  env.add_map("a", 7);
  EXPECT_EQ(env.get_map("a"), 7u);
  env.add_map("a", 9);  // rebinding replaces
  EXPECT_EQ(env.get_map("a"), 9u);
  env.remove_map("a");
  EXPECT_EQ(env.get_map("a"), kNoLabel);
}

TEST(Env, StatusLifecycle) {
  Env env;
  EXPECT_TRUE(env.running());
  env.set_status(Env::Status::kReturned);
  EXPECT_FALSE(env.running());
  env.set_status(Env::Status::kRunning);
  EXPECT_TRUE(env.running());
}

TEST(Env, ExtendReachabilityFirstAssignsCur) {
  HeapGraph g;
  Env env;
  EXPECT_EQ(env.cur(), kNoLabel);
  const Label cond = g.add_symbol("c", Type::kBool);
  extend_reachability(g, env, cond);
  EXPECT_EQ(env.cur(), cond);
}

TEST(Env, ExtendReachabilityConjoinsWithAnd) {
  HeapGraph g;
  Env env;
  const Label c1 = g.add_symbol("c1", Type::kBool);
  const Label c2 = g.add_symbol("c2", Type::kBool);
  extend_reachability(g, env, c1);
  extend_reachability(g, env, c2);
  const Object& cur = g.at(env.cur());
  EXPECT_EQ(cur.kind, Object::Kind::kOp);
  EXPECT_EQ(cur.op, OpKind::kAnd);
  ASSERT_EQ(cur.children.size(), 2u);
  EXPECT_EQ(cur.children[0], c1);
  EXPECT_EQ(cur.children[1], c2);
}

TEST(Env, ExtendReachabilityIgnoresNoLabel) {
  HeapGraph g;
  Env env;
  extend_reachability(g, env, kNoLabel);
  EXPECT_EQ(env.cur(), kNoLabel);
}

// --- S-expression rendering ---------------------------------------------------

TEST(SExpr, PaperListing2Reachability) {
  // (> (+ s 55) 10) — the paper's Fig. 4 example.
  HeapGraph g;
  const Label s = g.add_symbol("s", Type::kInt);
  const Label c55 = g.add_concrete(Value(std::int64_t{55}));
  const Label add = g.add_op(OpKind::kAdd, Type::kInt, {s, c55});
  const Label c10 = g.add_concrete(Value(std::int64_t{10}));
  const Label gt = g.add_op(OpKind::kGreater, Type::kBool, {add, c10});
  EXPECT_EQ(to_sexpr(g, gt), "(> (+ s 55) 10)");
}

TEST(SExpr, StringsAreQuoted) {
  HeapGraph g;
  const Label s = g.add_concrete(Value(std::string(".php")));
  EXPECT_EQ(to_sexpr(g, s), "\".php\"");
}

TEST(SExpr, FuncNodes) {
  HeapGraph g;
  const Label arg = g.add_symbol("name", Type::kString);
  const Label fn = g.add_func("strlen", Type::kInt, {arg});
  EXPECT_EQ(to_sexpr(g, fn), "(strlen name)");
}

TEST(SExpr, ArrayNodes) {
  HeapGraph g;
  const Label v = g.add_concrete(Value(std::string("x")));
  const Label arr = g.add_array({ArrayEntry{"name", false, v}});
  EXPECT_EQ(to_sexpr(g, arr), "(array (\"name\" . \"x\"))");
}

TEST(SExpr, InvalidLabelRendersNull) {
  HeapGraph g;
  EXPECT_EQ(to_sexpr(g, kNoLabel), "null");
}

// --- DOT export ----------------------------------------------------------------

TEST(Dot, ContainsNodesEdgesAndEnvs) {
  HeapGraph g;
  const Label a = g.add_symbol("s", Type::kInt);
  const Label b = g.add_concrete(Value(std::int64_t{5}));
  const Label op = g.add_op(OpKind::kAdd, Type::kInt, {a, b});
  Env env;
  env.add_map("x", op);
  env.set_cur(op);
  const std::string dot = to_dot(g, {env});
  EXPECT_NE(dot.find("digraph heapgraph"), std::string::npos);
  EXPECT_NE(dot.find("n3 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n3 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("Env_1"), std::string::npos);
  EXPECT_NE(dot.find("cur = 3"), std::string::npos);
}

TEST(Dot, TaintedNodesHighlighted) {
  HeapGraph g;
  g.add_symbol("$_FILES", Type::kArray, {}, true);
  EXPECT_NE(to_dot(g).find("lightpink"), std::string::npos);
}

// --- Hash-consing -------------------------------------------------------------

TEST(HashCons, StructurallyIdenticalNodesShareLabels) {
  HeapGraph g;
  const Label a1 = g.add_concrete(Value(std::int64_t{42}));
  const Label a2 = g.add_concrete(Value(std::int64_t{42}));
  EXPECT_EQ(a1, a2);
  const Label s = g.add_symbol("s", Type::kString);
  const Label op1 = g.add_op(OpKind::kConcat, Type::kString, {s, a1});
  const Label op2 = g.add_op(OpKind::kConcat, Type::kString, {s, a2});
  EXPECT_EQ(op1, op2);
  EXPECT_EQ(g.object_count(), 3u);  // 42, s, concat — each stored once
  EXPECT_EQ(g.cons_hits(), 2u);
}

TEST(HashCons, LabelsStayOneBasedAndStableUnderDedup) {
  HeapGraph g;
  const Label a = g.add_concrete(Value(std::int64_t{1}));
  const Label b = g.add_concrete(Value(std::int64_t{2}));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(g.add_concrete(Value(std::int64_t{1})), a);
  const Label c = g.add_concrete(Value(std::int64_t{3}));
  EXPECT_EQ(c, 3u);  // dedup never burns a label
}

TEST(HashCons, SymbolsAreNeverShared) {
  // Symbols are the mutation targets of mark_files_tainted and carry
  // identity (two reads of an unknown produce distinct unknowns), so
  // they stay out of the cons table even when structurally identical.
  HeapGraph g;
  const Label s1 = g.add_symbol("s", Type::kString);
  const Label s2 = g.add_symbol("s", Type::kString);
  EXPECT_NE(s1, s2);
}

TEST(HashCons, TaintIsPartOfTheConsKey) {
  HeapGraph g;
  const Label v = g.add_concrete(Value(std::string("v")));
  const Label clean_arr = g.add_array({ArrayEntry{"k", false, v}});
  const Label tainted_arr = g.add_array({ArrayEntry{"k", false, v}}, {}, true);
  EXPECT_NE(clean_arr, tainted_arr);
  EXPECT_FALSE(g.at(clean_arr).files_tainted);
  EXPECT_TRUE(g.at(tainted_arr).files_tainted);
}

TEST(HashCons, MarkFilesTaintedDoesNotMergeLaterTwins) {
  HeapGraph g;
  const Label v = g.add_concrete(Value(std::string("v")));
  const Label arr = g.add_array({ArrayEntry{"k", false, v}});
  g.mark_files_tainted(arr);
  // A fresh untainted twin must not resolve to the now-tainted node...
  const Label clean = g.add_array({ArrayEntry{"k", false, v}});
  EXPECT_NE(clean, arr);
  EXPECT_FALSE(g.at(clean).files_tainted);
  // ...while a tainted twin shares with the rekeyed node.
  const Label tainted = g.add_array({ArrayEntry{"k", false, v}}, {}, true);
  EXPECT_EQ(tainted, arr);
}

TEST(HashCons, RefineTypeRekeysSharedNodes) {
  HeapGraph g;
  const Label s = g.add_symbol("s", Type::kString);
  const Label op = g.add_op(OpKind::kConcat, Type::kUnknown, {s, s});
  g.refine_type(op, Type::kString);
  EXPECT_EQ(g.at(op).type, Type::kString);
  // Twins built with the refined type share; the stale pre-refinement
  // key must not resolve to the mutated node.
  EXPECT_EQ(g.add_op(OpKind::kConcat, Type::kString, {s, s}), op);
  EXPECT_NE(g.add_op(OpKind::kConcat, Type::kUnknown, {s, s}), op);
}

TEST(HashCons, SourceLocationIsPartOfTheConsKey) {
  // Two sinks on different lines must keep distinct loc metadata, so
  // location participates in structural identity.
  HeapGraph g;
  SourceLoc l1;
  l1.line = 3;
  SourceLoc l2;
  l2.line = 9;
  const Label a = g.add_concrete(Value(std::string("x")), l1);
  const Label b = g.add_concrete(Value(std::string("x")), l2);
  EXPECT_NE(a, b);
  EXPECT_EQ(g.add_concrete(Value(std::string("x")), l1), a);
}

TEST(HashCons, TaintMemoInvalidatedByMarkFilesTainted) {
  HeapGraph g;
  const Label s = g.add_symbol("late", Type::kString);
  const Label op = g.add_op(OpKind::kConcat, Type::kString, {s, s});
  EXPECT_FALSE(g.reaches_files_taint(op));  // memoized: no
  g.mark_files_tainted(s);
  EXPECT_TRUE(g.reaches_files_taint(op));  // memo dropped, recomputed
}

TEST(HashCons, SexprCacheReturnsIdenticalRendering) {
  HeapGraph g;
  const Label s = g.add_symbol("s_name", Type::kString);
  const Label c = g.add_concrete(Value(std::string("/up/")));
  const Label op = g.add_op(OpKind::kConcat, Type::kString, {c, s});
  const std::string first = to_sexpr(g, op);
  const std::string second = to_sexpr(g, op);  // served from the cache
  EXPECT_EQ(first, second);
  EXPECT_GE(g.sexpr_cache_hits(), 1u);
}

// --- Variable interning -------------------------------------------------------

TEST(VarInterner, SameNameSameId) {
  VarInterner interner;
  const VarId a = interner.intern("$x");
  const VarId b = interner.intern("$x");
  const VarId c = interner.intern("$y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, kNoVar);
  EXPECT_EQ(interner.name(a), "$x");
  EXPECT_EQ(interner.name(c), "$y");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(VarInterner, LookupDoesNotIntern) {
  VarInterner interner;
  EXPECT_EQ(interner.lookup("$never"), kNoVar);
  EXPECT_EQ(interner.size(), 0u);
  const VarId id = interner.intern("$once");
  EXPECT_EQ(interner.lookup("$once"), id);
}

TEST(Env, InternedAndStringApisAgree) {
  const auto interner = std::make_shared<VarInterner>();
  Env env;
  env.bind_interner(interner);
  env.add_map("a", 7);
  EXPECT_EQ(env.get(interner->intern("a")), 7u);
  env.set(interner->intern("b"), 9);
  EXPECT_EQ(env.get_map("b"), 9u);
  env.remove_map("a");
  EXPECT_EQ(env.get(interner->intern("a")), kNoLabel);
  const auto materialized = env.map();
  EXPECT_EQ(materialized.size(), 1u);
  EXPECT_EQ(materialized.at("b"), 9u);
}

// --- Property: DAG invariant (children always have smaller labels) ------------

TEST(HeapGraphProperty, ChildrenLabelsAreSmaller) {
  HeapGraph g;
  Label prev = g.add_symbol("s0", Type::kInt);
  for (int i = 0; i < 100; ++i) {
    const Label c = g.add_concrete(Value(static_cast<std::int64_t>(i)));
    prev = g.add_op(OpKind::kAdd, Type::kInt, {prev, c});
  }
  for (const Object& obj : g.objects()) {
    for (Label child : obj.children) {
      EXPECT_LT(child, obj.label);
    }
  }
}

}  // namespace
}  // namespace uchecker::core
