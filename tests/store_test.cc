// Durable store: crash-safety and corruption-detection properties. The
// contract under test is the scand acceptance bar — a torn write, bit
// flip, ENOSPC or schema change is *detected* and degrades to a cold
// recompute, never to trusting damaged bytes.
#include "support/store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "support/fault_injector.h"

namespace uchecker::store {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    dir_ = fs::temp_directory_path() /
           ("uchecker_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    FaultInjector::instance().disarm_all();
    fs::remove_all(dir_);
  }

  std::string path(const char* name = "cache.uds") const {
    return (dir_ / name).string();
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  static void splat(const std::string& p, const std::string& data) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << data;
  }

  fs::path dir_;
};

TEST_F(StoreTest, Fnv1a64KnownVectors) {
  // Reference values for the FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 12638187200555641996ULL);
  EXPECT_EQ(fnv1a64("foobar"), 9625390261332436968ULL);
  EXPECT_EQ(hex64(fnv1a64("foobar")), "85944171f73967e8");
}

TEST_F(StoreTest, RoundTripAcrossReopen) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(path(), "test-v1"));
    EXPECT_TRUE(kv.stats().cold_reason.empty());
    EXPECT_TRUE(kv.put("alpha", "1"));
    EXPECT_TRUE(kv.put("beta", "two"));
    EXPECT_TRUE(kv.put("alpha", "one"));  // upsert: later record wins
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  EXPECT_FALSE(kv.stats().cold_start);
  EXPECT_EQ(kv.stats().corrupt, 0u);
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv.get("alpha").value_or(""), "one");
  EXPECT_EQ(kv.get("beta").value_or(""), "two");
  EXPECT_FALSE(kv.get("gamma").has_value());
  EXPECT_EQ(kv.stats().hits, 2u);
  EXPECT_EQ(kv.stats().misses, 1u);
}

TEST_F(StoreTest, SchemaMismatchColdStarts) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(path(), "engine-v1"));
    kv.put("k", "old engine value");
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "engine-v2"));
  EXPECT_TRUE(kv.stats().cold_start);
  EXPECT_EQ(kv.stats().cold_reason, "store header/schema mismatch");
  EXPECT_EQ(kv.size(), 0u);
  // The store is re-initialized and usable under the new schema.
  EXPECT_TRUE(kv.put("k", "new"));
  KvStore again;
  ASSERT_TRUE(again.open(path(), "engine-v2"));
  EXPECT_EQ(again.get("k").value_or(""), "new");
}

TEST_F(StoreTest, GarbageFileColdStarts) {
  splat(path(), "this is not a store file at all");
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  EXPECT_TRUE(kv.stats().cold_start);
  EXPECT_EQ(kv.size(), 0u);
  EXPECT_TRUE(kv.put("fresh", "start"));
}

TEST_F(StoreTest, BitFlipInRecordIsDetectedNotTrusted) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(path(), "test-v1"));
    kv.put("first", "survives");
    kv.put("second", "this payload will be damaged on disk");
  }
  // Flip one bit inside the *last* record's payload.
  std::string bytes = slurp(path());
  ASSERT_GT(bytes.size(), 8u);
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x01);
  splat(path(), bytes);

  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  EXPECT_FALSE(kv.stats().cold_start);
  EXPECT_EQ(kv.stats().corrupt, 1u);
  // The intact prefix survives; the damaged record degrades to a miss.
  EXPECT_EQ(kv.get("first").value_or(""), "survives");
  EXPECT_FALSE(kv.get("second").has_value());
}

TEST_F(StoreTest, TornTailIsTruncatedAndAppendsResume) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(path(), "test-v1"));
    kv.put("a", "1");
    kv.put("b", "2");
  }
  // Tear the file mid-record (a crash during the final append).
  std::string bytes = slurp(path());
  splat(path(), bytes.substr(0, bytes.size() - 3));

  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  EXPECT_EQ(kv.stats().corrupt, 1u);
  EXPECT_EQ(kv.get("a").value_or(""), "1");
  EXPECT_FALSE(kv.get("b").has_value());
  // New appends land on a clean tail, not on top of the torn bytes.
  EXPECT_TRUE(kv.put("c", "3"));
  KvStore again;
  ASSERT_TRUE(again.open(path(), "test-v1"));
  EXPECT_EQ(again.stats().corrupt, 0u);
  EXPECT_EQ(again.get("a").value_or(""), "1");
  EXPECT_EQ(again.get("c").value_or(""), "3");
}

TEST_F(StoreTest, InjectedShortWriteIsDetectedOnReopen) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(path(), "test-v1"));
    kv.put("good", "record");
    FaultInjector::instance().arm("store.append",
                                  FaultInjector::Action::kShortWrite,
                                  std::chrono::milliseconds{0}, 1);
    // The short write *reports success* — exactly like a power cut after
    // the write() returned: the truth only surfaces on the next open.
    kv.put("torn", "only half of this record reaches the disk");
    FaultInjector::instance().disarm_all();
  }
  EXPECT_EQ(FaultInjector::instance().hits("store.append"), 0u)
      << "hits are reset by disarm_all";
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  EXPECT_EQ(kv.stats().corrupt, 1u);
  EXPECT_EQ(kv.get("good").value_or(""), "record");
  EXPECT_FALSE(kv.get("torn").has_value());
}

TEST_F(StoreTest, InjectedEnospcDropsFlushButKeepsServing) {
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  ASSERT_TRUE(kv.put("before", "disk had space"));
  FaultInjector::instance().arm("store.append", FaultInjector::Action::kEnospc,
                                std::chrono::milliseconds{0}, 1);
  // The append fails cleanly; the in-memory cache still serves the value
  // for this process's lifetime, it just will not survive a restart.
  EXPECT_FALSE(kv.put("during", "no space left"));
  EXPECT_EQ(kv.stats().dropped_flushes, 1u);
  EXPECT_EQ(kv.get("during").value_or(""), "no space left");
  // The device recovers; later appends are durable again.
  EXPECT_TRUE(kv.put("after", "space again"));
  kv.close();

  KvStore reopened;
  ASSERT_TRUE(reopened.open(path(), "test-v1"));
  EXPECT_EQ(reopened.get("before").value_or(""), "disk had space");
  EXPECT_FALSE(reopened.get("during").has_value());
  EXPECT_EQ(reopened.get("after").value_or(""), "space again");
}

TEST_F(StoreTest, InjectedTornRenameKeepsOriginalLive) {
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  for (int i = 0; i < 8; ++i) {
    kv.put("key", "version " + std::to_string(i));
  }
  FaultInjector::instance().arm("store.rename",
                                FaultInjector::Action::kTornRename,
                                std::chrono::milliseconds{0}, 1);
  EXPECT_FALSE(kv.compact());
  EXPECT_EQ(FaultInjector::instance().hits("store.rename"), 1u);
  kv.close();

  // The "crash" happened between temp-file write and rename: the
  // original (uncompacted) log is still the live store.
  KvStore reopened;
  ASSERT_TRUE(reopened.open(path(), "test-v1"));
  EXPECT_FALSE(reopened.stats().cold_start);
  EXPECT_EQ(reopened.stats().corrupt, 0u);
  EXPECT_EQ(reopened.get("key").value_or(""), "version 7");
}

TEST_F(StoreTest, InjectedReadBitFlipIsCaughtByChecksum) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(path(), "test-v1"));
    kv.put("k", std::string(256, 'x'));
  }
  FaultInjector::instance().arm("store.read", FaultInjector::Action::kBitFlip,
                                std::chrono::milliseconds{0}, 1);
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  EXPECT_GE(kv.stats().corrupt + (kv.stats().cold_start ? 1u : 0u), 1u)
      << "a flipped bit must surface as corruption or a cold start";
  EXPECT_FALSE(kv.get("k").has_value());
}

TEST_F(StoreTest, CompactShrinksAndPreservesLiveMap) {
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  for (int i = 0; i < 100; ++i) {
    kv.put("hot-key", "value " + std::to_string(i));
  }
  kv.put("other", "kept");
  const auto before = fs::file_size(path());
  ASSERT_TRUE(kv.compact());
  const auto after = fs::file_size(path());
  EXPECT_LT(after, before);
  // Appends after compaction go to the published file.
  EXPECT_TRUE(kv.put("post", "compact"));
  kv.close();

  KvStore reopened;
  ASSERT_TRUE(reopened.open(path(), "test-v1"));
  EXPECT_EQ(reopened.get("hot-key").value_or(""), "value 99");
  EXPECT_EQ(reopened.get("other").value_or(""), "kept");
  EXPECT_EQ(reopened.get("post").value_or(""), "compact");
}

TEST_F(StoreTest, InvalidateCountsCorruptAndForcesRecompute) {
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  kv.put("k", "semantically broken value");
  kv.invalidate("k");
  EXPECT_EQ(kv.stats().corrupt, 1u);
  EXPECT_FALSE(kv.get("k").has_value());
}

TEST_F(StoreTest, UnwritableDirectoryDisablesPersistenceNotService) {
  KvStore kv;
  EXPECT_FALSE(kv.open((dir_ / "no/such/dir/cache.uds").string(), "test-v1"));
  // Still a working in-memory cache: degraded, never wrong.
  EXPECT_FALSE(kv.put("k", "v"));
  EXPECT_EQ(kv.get("k").value_or(""), "v");
}

TEST_F(StoreTest, EmptyValueAndBinaryKeysRoundTrip) {
  {
    KvStore kv;
    ASSERT_TRUE(kv.open(path(), "test-v1"));
    kv.put(std::string("\x00\x01\xff key", 8), "");
    kv.put("k2", std::string("\x00"
                             "binary\xff",
                             8));
  }
  KvStore kv;
  ASSERT_TRUE(kv.open(path(), "test-v1"));
  EXPECT_EQ(kv.get(std::string("\x00\x01\xff key", 8)).value_or("x"), "");
  EXPECT_EQ(kv.get("k2").value_or(""), std::string("\x00"
                                                   "binary\xff",
                                                   8));
}

}  // namespace
}  // namespace uchecker::store
