#include "phpparse/parser.h"

#include <gtest/gtest.h>

#include <memory>

#include "phpast/printer.h"
#include "phpast/visitor.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::phpparse {
namespace {

using namespace phpast;  // NOLINT

struct ParseResult {
  PhpFile file;
  bool ok = false;
};

// Keeps sources and arenas alive for the process (tests hold pointers
// into ASTs, whose nodes and name views live in the parse arena).
PhpFile parse(const std::string& src, bool* ok = nullptr) {
  static SourceManager* sm = new SourceManager();
  static std::vector<Arena>* arenas = new std::vector<Arena>();
  DiagnosticSink diags;
  const FileId id = sm->add_file("test.php", src);
  arenas->emplace_back();
  PhpFile file = parse_php(*sm->file(id), diags, arenas->back());
  if (ok != nullptr) *ok = !diags.has_errors();
  return file;
}

const Expr& first_expr(const PhpFile& file) {
  const Stmt& stmt = *file.statements.at(0);
  EXPECT_EQ(stmt.kind(), NodeKind::kExprStmt);
  return *static_cast<const ExprStmt&>(stmt).expr;
}

TEST(Parser, EmptyProgram) {
  bool ok = false;
  const PhpFile file = parse("<?php\n", &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(file.statements.empty());
}

TEST(Parser, SimpleAssignment) {
  bool ok = false;
  const PhpFile file = parse("<?php $a = 1 + 2;", &ok);
  ASSERT_TRUE(ok);
  const Expr& e = first_expr(file);
  ASSERT_EQ(e.kind(), NodeKind::kAssign);
  const auto& assign = static_cast<const Assign&>(e);
  EXPECT_EQ(assign.target->kind(), NodeKind::kVariable);
  ASSERT_EQ(assign.value->kind(), NodeKind::kBinary);
  EXPECT_EQ(static_cast<const Binary&>(*assign.value).op, BinaryOp::kAdd);
}

TEST(Parser, OperatorPrecedenceMulOverAdd) {
  const PhpFile file = parse("<?php $a = 1 + 2 * 3;");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& add = static_cast<const Binary&>(*assign.value);
  ASSERT_EQ(add.op, BinaryOp::kAdd);
  EXPECT_EQ(add.rhs->kind(), NodeKind::kBinary);
  EXPECT_EQ(static_cast<const Binary&>(*add.rhs).op, BinaryOp::kMul);
}

TEST(Parser, ConcatSamePrecedenceAsAddLeftAssoc) {
  const PhpFile file = parse("<?php $a = 'x' . 'y' . 'z';");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& outer = static_cast<const Binary&>(*assign.value);
  ASSERT_EQ(outer.op, BinaryOp::kConcat);
  // Left-associative: (x . y) . z
  ASSERT_EQ(outer.lhs->kind(), NodeKind::kBinary);
  EXPECT_EQ(outer.rhs->kind(), NodeKind::kStringLit);
}

TEST(Parser, ComparisonBindsLooserThanArith) {
  const PhpFile file = parse("<?php $a = $b + 1 > 10;");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& cmp = static_cast<const Binary&>(*assign.value);
  EXPECT_EQ(cmp.op, BinaryOp::kGreater);
}

TEST(Parser, LogicalAndOr) {
  const PhpFile file = parse("<?php $a = $b && $c || $d;");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& orop = static_cast<const Binary&>(*assign.value);
  ASSERT_EQ(orop.op, BinaryOp::kOr);
  EXPECT_EQ(static_cast<const Binary&>(*orop.lhs).op, BinaryOp::kAnd);
}

TEST(Parser, AssignmentIsRightAssociative) {
  const PhpFile file = parse("<?php $a = $b = 5;");
  const auto& outer = static_cast<const Assign&>(first_expr(file));
  EXPECT_EQ(outer.value->kind(), NodeKind::kAssign);
}

TEST(Parser, CompoundAssignment) {
  const PhpFile file = parse("<?php $a .= '/x';");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  ASSERT_TRUE(assign.compound_op.has_value());
  EXPECT_EQ(*assign.compound_op, BinaryOp::kConcat);
}

TEST(Parser, TernaryAndElvis) {
  const PhpFile file = parse("<?php $a = $b ? 1 : 2; $c = $d ?: 'z';");
  const auto& t1 = static_cast<const Ternary&>(
      *static_cast<const Assign&>(first_expr(file)).value);
  EXPECT_NE(t1.then_expr, nullptr);
  const auto& stmt2 = static_cast<const ExprStmt&>(*file.statements.at(1));
  const auto& t2 = static_cast<const Ternary&>(
      *static_cast<const Assign&>(*stmt2.expr).value);
  EXPECT_EQ(t2.then_expr, nullptr);  // Elvis form
}

TEST(Parser, ArrayAccessChain) {
  const PhpFile file = parse("<?php $x = $_FILES['f']['name'];");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  ASSERT_EQ(assign.value->kind(), NodeKind::kArrayAccess);
  const auto& outer = static_cast<const ArrayAccess&>(*assign.value);
  ASSERT_EQ(outer.base->kind(), NodeKind::kArrayAccess);
  const auto& inner = static_cast<const ArrayAccess&>(*outer.base);
  EXPECT_EQ(static_cast<const Variable&>(*inner.base).name, "_FILES");
}

TEST(Parser, ArrayPushTarget) {
  const PhpFile file = parse("<?php $a[] = 1;");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& access = static_cast<const ArrayAccess&>(*assign.target);
  EXPECT_EQ(access.index, nullptr);
}

TEST(Parser, FunctionCallWithArgs) {
  const PhpFile file = parse("<?php move_uploaded_file($a, $b . '/c');");
  const auto& call = static_cast<const Call&>(first_expr(file));
  EXPECT_EQ(call.callee, "move_uploaded_file");
  ASSERT_EQ(call.args.size(), 2u);
}

TEST(Parser, CallNamesAreLowercased) {
  const PhpFile file = parse("<?php Move_Uploaded_File($a, $b);");
  const auto& call = static_cast<const Call&>(first_expr(file));
  EXPECT_EQ(call.callee, "move_uploaded_file");
}

TEST(Parser, NestedCalls) {
  const PhpFile file = parse("<?php $x = basename(trim($name));");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& outer = static_cast<const Call&>(*assign.value);
  EXPECT_EQ(outer.callee, "basename");
  EXPECT_EQ(static_cast<const Call&>(*outer.args[0]).callee, "trim");
}

TEST(Parser, ArrayLiteralBothForms) {
  const PhpFile file =
      parse("<?php $a = array('x' => 1, 2); $b = ['k' => 'v'];");
  const auto& a1 = static_cast<const ArrayLit&>(
      *static_cast<const Assign&>(first_expr(file)).value);
  ASSERT_EQ(a1.items.size(), 2u);
  EXPECT_NE(a1.items[0].key, nullptr);
  EXPECT_EQ(a1.items[1].key, nullptr);
  const auto& stmt2 = static_cast<const ExprStmt&>(*file.statements.at(1));
  const auto& a2 = static_cast<const ArrayLit&>(
      *static_cast<const Assign&>(*stmt2.expr).value);
  ASSERT_EQ(a2.items.size(), 1u);
}

TEST(Parser, IfElseChain) {
  bool ok = false;
  const PhpFile file = parse(R"(<?php
if ($a) { echo 1; } elseif ($b) { echo 2; } else if ($c) { echo 3; } else { echo 4; }
)", &ok);
  ASSERT_TRUE(ok);
  const auto& stmt = static_cast<const If&>(*file.statements.at(0));
  EXPECT_EQ(stmt.elseifs.size(), 2u);  // elseif + "else if"
  EXPECT_TRUE(stmt.has_else);
}

TEST(Parser, IfWithoutBraces) {
  const PhpFile file = parse("<?php if ($a) echo 1; else echo 2;");
  const auto& stmt = static_cast<const If&>(*file.statements.at(0));
  EXPECT_EQ(stmt.then_body.size(), 1u);
  EXPECT_TRUE(stmt.has_else);
}

TEST(Parser, AlternativeIfSyntax) {
  bool ok = false;
  const PhpFile file = parse(R"(<?php
if ($a):
    echo 1;
elseif ($b):
    echo 2;
else:
    echo 3;
endif;
)", &ok);
  ASSERT_TRUE(ok);
  const auto& stmt = static_cast<const If&>(*file.statements.at(0));
  EXPECT_EQ(stmt.elseifs.size(), 1u);
  EXPECT_TRUE(stmt.has_else);
}

TEST(Parser, WhileAndDoWhile) {
  const PhpFile file = parse("<?php while ($a) { $a = $a - 1; } do { $b; } while ($b);");
  EXPECT_EQ(file.statements.at(0)->kind(), NodeKind::kWhile);
  EXPECT_EQ(file.statements.at(1)->kind(), NodeKind::kDoWhile);
}

TEST(Parser, ForLoop) {
  const PhpFile file = parse("<?php for ($i = 0; $i < 10; $i++) { echo $i; }");
  const auto& loop = static_cast<const For&>(*file.statements.at(0));
  EXPECT_EQ(loop.init.size(), 1u);
  EXPECT_EQ(loop.cond.size(), 1u);
  EXPECT_EQ(loop.step.size(), 1u);
}

TEST(Parser, ForeachWithKey) {
  const PhpFile file =
      parse("<?php foreach ($arr as $k => $v) { echo $k; } foreach ($a as $x) {}");
  const auto& fe = static_cast<const Foreach&>(*file.statements.at(0));
  EXPECT_NE(fe.key_var, nullptr);
  const auto& fe2 = static_cast<const Foreach&>(*file.statements.at(1));
  EXPECT_EQ(fe2.key_var, nullptr);
}

TEST(Parser, SwitchCases) {
  const PhpFile file = parse(R"(<?php
switch ($x) {
    case 'a':
        echo 1;
        break;
    case 'b':
        echo 2;
        break;
    default:
        echo 3;
}
)");
  const auto& sw = static_cast<const Switch&>(*file.statements.at(0));
  ASSERT_EQ(sw.cases.size(), 3u);
  EXPECT_NE(sw.cases[0].match, nullptr);
  EXPECT_EQ(sw.cases[2].match, nullptr);  // default
}

TEST(Parser, FunctionDeclWithDefaults) {
  const PhpFile file =
      parse("<?php function f($a, $b = 5, array $c = array()) { return $a; }");
  const auto& fn = static_cast<const FunctionDecl&>(*file.statements.at(0));
  EXPECT_EQ(fn.name, "f");
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_EQ(fn.params[0].default_value, nullptr);
  EXPECT_NE(fn.params[1].default_value, nullptr);
  EXPECT_EQ(fn.params[2].type_hint, "array");
}

TEST(Parser, FunctionByRefParam) {
  const PhpFile file = parse("<?php function f(&$x) {}");
  const auto& fn = static_cast<const FunctionDecl&>(*file.statements.at(0));
  EXPECT_TRUE(fn.params[0].by_ref);
}

TEST(Parser, ReturnWithAndWithoutValue) {
  const PhpFile file = parse("<?php function f() { return; } function g() { return 1; }");
  const auto& f = static_cast<const FunctionDecl&>(*file.statements.at(0));
  EXPECT_EQ(static_cast<const Return&>(*f.body[0]).value, nullptr);
  const auto& g = static_cast<const FunctionDecl&>(*file.statements.at(1));
  EXPECT_NE(static_cast<const Return&>(*g.body[0]).value, nullptr);
}

TEST(Parser, ClassWithMethodsAndProperties) {
  bool ok = false;
  const PhpFile file = parse(R"(<?php
class Uploader extends Base {
    public $dir = '/tmp';
    private static $count;
    const LIMIT = 5;
    public function save($file) {
        return move_uploaded_file($file['tmp_name'], $this->dir);
    }
    protected function helper() {}
}
)", &ok);
  ASSERT_TRUE(ok);
  const auto& cls = static_cast<const ClassDecl&>(*file.statements.at(0));
  EXPECT_EQ(cls.name, "Uploader");
  EXPECT_EQ(cls.parent, "Base");
  EXPECT_EQ(cls.methods.size(), 2u);
  EXPECT_EQ(cls.properties.size(), 3u);
}

TEST(Parser, MethodAndStaticCalls) {
  const PhpFile file = parse("<?php $o->run(1); Klass::boot($x);");
  const auto& mc = static_cast<const MethodCall&>(first_expr(file));
  EXPECT_EQ(mc.method, "run");
  const auto& stmt2 = static_cast<const ExprStmt&>(*file.statements.at(1));
  const auto& sc = static_cast<const StaticCall&>(*stmt2.expr);
  EXPECT_EQ(sc.class_name, "Klass");
  EXPECT_EQ(sc.method, "boot");
}

TEST(Parser, PropertyAccess) {
  const PhpFile file = parse("<?php $x = $obj->field;");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& pa = static_cast<const PropertyAccess&>(*assign.value);
  EXPECT_EQ(pa.name, "field");
}

TEST(Parser, IncludeRequireForms) {
  const PhpFile file = parse(
      "<?php include 'a.php'; include_once 'b.php'; require 'c.php'; "
      "require_once('d.php');");
  for (int i = 0; i < 4; ++i) {
    const auto& stmt = static_cast<const ExprStmt&>(*file.statements.at(i));
    EXPECT_EQ(stmt.expr->kind(), NodeKind::kIncludeExpr) << i;
  }
}

TEST(Parser, GlobalStatement) {
  const PhpFile file = parse("<?php global $wpdb, $wp_query;");
  const auto& g = static_cast<const Global&>(*file.statements.at(0));
  ASSERT_EQ(g.names.size(), 2u);
  EXPECT_EQ(g.names[0], "wpdb");
}

TEST(Parser, IssetEmptyUnset) {
  const PhpFile file = parse("<?php $a = isset($x, $y); $b = empty($z); unset($w);");
  const auto& is = static_cast<const Isset&>(
      *static_cast<const Assign&>(first_expr(file)).value);
  EXPECT_EQ(is.operands.size(), 2u);
  EXPECT_EQ(file.statements.at(2)->kind(), NodeKind::kUnsetStmt);
}

TEST(Parser, ExitAndDie) {
  const PhpFile file = parse("<?php exit; die('msg'); exit(1);");
  EXPECT_EQ(first_expr(file).kind(), NodeKind::kExitExpr);
  const auto& die_stmt = static_cast<const ExprStmt&>(*file.statements.at(1));
  const auto& die_expr = static_cast<const ExitExpr&>(*die_stmt.expr);
  EXPECT_NE(die_expr.operand, nullptr);
}

TEST(Parser, Casts) {
  const PhpFile file = parse("<?php $a = (int)$x; $b = (string)$y; $c = (bool)$z;");
  const auto& c1 = static_cast<const Cast&>(
      *static_cast<const Assign&>(first_expr(file)).value);
  EXPECT_EQ(c1.cast, CastKind::kInt);
}

TEST(Parser, InterpolatedStringDesugarsToConcat) {
  const PhpFile file = parse(R"(<?php $p = "$dir/$name.tmp";)");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  // Desugared into a concat chain containing both variables.
  int vars = 0;
  walk(*assign.value, [&vars](const Node& n) {
    if (n.kind() == NodeKind::kVariable) ++vars;
    return true;
  });
  EXPECT_EQ(vars, 2);
  EXPECT_EQ(assign.value->kind(), NodeKind::kBinary);
}

TEST(Parser, ClosureWithUse) {
  const PhpFile file = parse("<?php $f = function($a) use ($b) { return $a + $b; };");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& closure = static_cast<const Closure&>(*assign.value);
  EXPECT_EQ(closure.params.size(), 1u);
  ASSERT_EQ(closure.uses.size(), 1u);
  EXPECT_EQ(closure.uses[0], "b");
}

TEST(Parser, TryCatchFinally) {
  const PhpFile file = parse(R"(<?php
try { risky(); } catch (FooException $e) { log_it($e); } finally { cleanup(); }
)");
  const auto& tc = static_cast<const TryCatch&>(*file.statements.at(0));
  ASSERT_EQ(tc.catches.size(), 1u);
  EXPECT_EQ(tc.catches[0].exception_class, "FooException");
  EXPECT_EQ(tc.catches[0].variable, "e");
  EXPECT_EQ(tc.finally_body.size(), 1u);
}

TEST(Parser, ListDestructuring) {
  const PhpFile file = parse("<?php list($a, $b) = explode('.', $name);");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  EXPECT_EQ(assign.target->kind(), NodeKind::kListExpr);
}

TEST(Parser, NewExpression) {
  const PhpFile file = parse("<?php $o = new Uploader($dir);");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& n = static_cast<const New&>(*assign.value);
  EXPECT_EQ(n.class_name, "Uploader");
  EXPECT_EQ(n.args.size(), 1u);
}

TEST(Parser, ErrorRecoveryContinuesParsing) {
  bool ok = true;
  const PhpFile file = parse("<?php $a = ; $b = 2;", &ok);
  EXPECT_FALSE(ok);
  // The second statement still parses.
  bool found_b = false;
  for (const auto& stmt : file.statements) {
    walk(*stmt, [&found_b](const Node& n) {
      if (n.kind() == NodeKind::kVariable &&
          static_cast<const Variable&>(n).name == "b") {
        found_b = true;
      }
      return true;
    });
  }
  EXPECT_TRUE(found_b);
}

TEST(Parser, NodesCarrySourceLines) {
  const PhpFile file = parse("<?php\n\n$a = 1;\n");
  EXPECT_EQ(file.statements.at(0)->loc().line, 3u);
}

TEST(Parser, DumpIsStable) {
  const PhpFile f1 = parse("<?php $a = foo($b, 'c') . $d['e'];");
  const PhpFile f2 = parse("<?php $a = foo($b, 'c') . $d['e'];");
  EXPECT_EQ(dump(f1), dump(f2));
  EXPECT_NE(dump(f1).find("(call foo"), std::string::npos);
}

TEST(Parser, KeywordAsMethodNameAllowed) {
  bool ok = false;
  parse("<?php $o->list(); $o->print();", &ok);
  EXPECT_TRUE(ok);
}

TEST(Parser, NamespaceAndUseSkipped) {
  bool ok = false;
  const PhpFile file = parse("<?php namespace A\\B; use C\\D; $x = 1;", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(file.statements.back()->kind(), NodeKind::kExprStmt);
}

TEST(Parser, StringOffsetLegacyBraces) {
  bool ok = false;
  parse("<?php $c = $s{0};", &ok);
  EXPECT_TRUE(ok);
}


TEST(Parser, AlternativeLoopSyntax) {
  bool ok = false;
  const PhpFile file = parse(R"(<?php
while ($a):
    echo 1;
endwhile;
foreach ($xs as $x):
    echo $x;
endforeach;
for ($i = 0; $i < 3; $i++):
    echo $i;
endfor;
)", &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(file.statements.at(0)->kind(), NodeKind::kWhile);
  EXPECT_EQ(file.statements.at(1)->kind(), NodeKind::kForeach);
  EXPECT_EQ(file.statements.at(2)->kind(), NodeKind::kFor);
}

TEST(Parser, DeepNestingIsCappedNotCrashing) {
  std::string expr = "1";
  for (int i = 0; i < 1000; ++i) expr = "(" + expr + ")";
  bool ok = true;
  parse("<?php $x = " + expr + ";", &ok);
  EXPECT_FALSE(ok);  // depth error reported, no crash
}

TEST(Parser, ErrorPlaceholdersKeepTreesComplete) {
  bool ok = true;
  const PhpFile file = parse("<?php $a = $b ? : ; echo $a;", &ok);
  EXPECT_FALSE(ok);
  // Every surviving node has non-null required children.
  for (const auto& stmt : file.statements) {
    walk(*stmt, [](const Node& n) {
      if (n.kind() == NodeKind::kTernary) {
        EXPECT_NE(static_cast<const Ternary&>(n).else_expr, nullptr);
      }
      if (n.kind() == NodeKind::kAssign) {
        const auto& a = static_cast<const Assign&>(n);
        EXPECT_NE(a.target, nullptr);
        EXPECT_NE(a.value, nullptr);
      }
      return true;
    });
  }
}

TEST(Parser, ShortEchoTagParses) {
  bool ok = false;
  const PhpFile file = parse("<?= $greeting ?>", &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(file.statements.at(0)->kind(), NodeKind::kEcho);
}

TEST(Parser, InlineHtmlBetweenBlocks) {
  bool ok = false;
  const PhpFile file = parse("<?php $a = 1; ?>\n<b>html</b>\n<?php $c = 2;", &ok);
  ASSERT_TRUE(ok);
  bool saw_html = false;
  for (const auto& stmt : file.statements) {
    if (stmt->kind() == NodeKind::kInlineHtml) saw_html = true;
  }
  EXPECT_TRUE(saw_html);
}

TEST(Parser, PowRightAssociative) {
  const PhpFile file = parse("<?php $x = 2 ** 3 ** 2;");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& outer = static_cast<const Binary&>(*assign.value);
  ASSERT_EQ(outer.op, BinaryOp::kPow);
  // Right-associative: 2 ** (3 ** 2).
  EXPECT_EQ(outer.lhs->kind(), NodeKind::kIntLit);
  EXPECT_EQ(outer.rhs->kind(), NodeKind::kBinary);
}

TEST(Parser, CoalesceOperator) {
  const PhpFile file = parse("<?php $x = $a ?? $b ?? 'default';");
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& outer = static_cast<const Binary&>(*assign.value);
  ASSERT_EQ(outer.op, BinaryOp::kCoalesce);
  // Right-associative.
  EXPECT_EQ(outer.rhs->kind(), NodeKind::kBinary);
}

TEST(Parser, LowPrecedenceAndOrKeywords) {
  bool ok = false;
  parse("<?php $ok = do_thing() or die('failed');", &ok);
  EXPECT_TRUE(ok);
}

TEST(Parser, ClassConstantAndStaticProperty) {
  bool ok = false;
  const PhpFile file = parse("<?php $a = Config::LIMIT; $b = Config::$count;", &ok);
  ASSERT_TRUE(ok);
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  EXPECT_EQ(assign.value->kind(), NodeKind::kConstFetch);
}

// --- arena lifetime / string_view aliasing -------------------------------
//
// Every view in the AST must be backed by the parse arena, never by the
// SourceManager's content string or any lexer scratch buffer. These
// tests destroy the SourceManager (which owns the only other copy of
// the source bytes) and then read the AST; under ASan any view still
// aliasing the source buffer is a heap-use-after-free.

// Parses into `arena` and destroys the SourceManager before returning.
PhpFile parse_then_drop_source(const std::string& src, Arena& arena) {
  auto sm = std::make_unique<SourceManager>();
  DiagnosticSink diags;
  const FileId id = sm->add_file("t.php", src);
  PhpFile file = parse_php(*sm->file(id), diags, arena);
  EXPECT_FALSE(diags.has_errors()) << diags.render(*sm);
  sm.reset();  // frees the source content the token views were lexed from
  return file;
}

TEST(Parser, AstOutlivesSourceBuffer) {
  Arena arena;
  const PhpFile file = parse_then_drop_source(
      "<?php $name = $_FILES['upload']['name']; "
      "move_uploaded_file($name, '/var/www/' . $name);",
      arena);
  ASSERT_EQ(file.statements.size(), 2u);
  const auto& assign = static_cast<const Assign&>(first_expr(file));
  const auto& var = static_cast<const Variable&>(*assign.target);
  EXPECT_EQ(var.name, "name");
  ASSERT_EQ(assign.value->kind(), NodeKind::kArrayAccess);
  const auto& outer = static_cast<const ArrayAccess&>(*assign.value);
  EXPECT_EQ(static_cast<const StringLit&>(*outer.index).value, "name");
  const auto& inner = static_cast<const ArrayAccess&>(*outer.base);
  EXPECT_EQ(static_cast<const Variable&>(*inner.base).name, "_FILES");
  EXPECT_EQ(static_cast<const StringLit&>(*inner.index).value, "upload");
  const auto& call_stmt = static_cast<const ExprStmt&>(*file.statements[1]);
  const auto& call = static_cast<const Call&>(*call_stmt.expr);
  EXPECT_EQ(call.callee, "move_uploaded_file");
  ASSERT_EQ(call.args.size(), 2u);
}

TEST(Parser, DecodedStringsOutliveSourceBuffer) {
  Arena arena;
  // Escaped strings are decoded through lexer scratch buffers; the
  // decoded bytes must land in the arena, not the scratch.
  const PhpFile file = parse_then_drop_source(
      "<?php $a = \"tab\\there\"; $b = 'quote\\'d'; "
      "$c = \"interp $x tail\";",
      arena);
  ASSERT_EQ(file.statements.size(), 3u);
  const auto& a = static_cast<const Assign&>(
      *static_cast<const ExprStmt&>(*file.statements[0]).expr);
  EXPECT_EQ(static_cast<const StringLit&>(*a.value).value, "tab\there");
  const auto& b = static_cast<const Assign&>(
      *static_cast<const ExprStmt&>(*file.statements[1]).expr);
  EXPECT_EQ(static_cast<const StringLit&>(*b.value).value, "quote'd");
  // Interpolation desugars to concatenation; its literal pieces are
  // arena-backed too.
  const auto& c = static_cast<const Assign&>(
      *static_cast<const ExprStmt&>(*file.statements[2]).expr);
  EXPECT_EQ(c.value->kind(), NodeKind::kBinary);
}

TEST(Parser, DeclarationsOutliveSourceBuffer) {
  Arena arena;
  const PhpFile file = parse_then_drop_source(
      "<?php function handler($file, &$out) { global $log; return $file; } "
      "class Uploader extends Base { public $dir = '/tmp'; "
      "function save() { return $this->dir; } }",
      arena);
  ASSERT_EQ(file.statements.size(), 2u);
  const auto& fn = static_cast<const FunctionDecl&>(*file.statements[0]);
  EXPECT_EQ(fn.name, "handler");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].name, "file");
  EXPECT_EQ(fn.params[1].name, "out");
  const auto& cls = static_cast<const ClassDecl&>(*file.statements[1]);
  EXPECT_EQ(cls.name, "Uploader");
  EXPECT_EQ(cls.parent, "Base");
  ASSERT_EQ(cls.properties.size(), 1u);
  EXPECT_EQ(cls.properties[0].name, "dir");
  ASSERT_EQ(cls.methods.size(), 1u);
  EXPECT_EQ(cls.methods[0]->name, "save");
}

TEST(Parser, DumpIsStableAfterSourceBufferDies) {
  // Dump before and after the SourceManager dies must agree — i.e. no
  // view silently aliases freed memory that happens to still read back.
  auto sm = std::make_unique<SourceManager>();
  DiagnosticSink diags;
  const FileId id = sm->add_file(
      "t.php", "<?php foreach ($_FILES as $k => $v) { echo \"$k\\n\"; }");
  Arena arena;
  const PhpFile file = parse_php(*sm->file(id), diags, arena);
  const std::string before = phpast::dump(file);
  sm.reset();
  EXPECT_EQ(phpast::dump(file), before);
}

}  // namespace
}  // namespace uchecker::phpparse
