#include "phplex/lexer.h"

#include <gtest/gtest.h>

#include "support/arena.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::phplex {
namespace {

// Token text views are backed by the lexing arena, so the arena (like
// the SourceManager) must outlive every returned token.
Arena& test_arena() {
  static Arena arena;
  return arena;
}

std::vector<Token> lex(const std::string& src) {
  static SourceManager sm;
  DiagnosticSink diags;
  const FileId id = sm.add_file("test.php", src);
  return lex_file(*sm.file(id), diags, test_arena());
}

std::vector<TokenKind> kinds(const std::string& src) {
  std::vector<TokenKind> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEndOfFile);
}

TEST(Lexer, InlineHtmlOnly) {
  const auto tokens = lex("<html>hello</html>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kInlineHtml);
  EXPECT_EQ(tokens[0].text, "<html>hello</html>");
}

TEST(Lexer, OpenTagEntersPhpMode) {
  const auto tokens = lex("<?php $x;");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[0].text, "x");
}

TEST(Lexer, CloseTagEmitsSemicolonAndHtml) {
  const auto k = kinds("<?php $x ?>after");
  // $x ; (from ?>) html eof
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[0], TokenKind::kVariable);
  EXPECT_EQ(k[1], TokenKind::kSemicolon);
  EXPECT_EQ(k[2], TokenKind::kInlineHtml);
}

TEST(Lexer, ShortEchoTag) {
  const auto k = kinds("<?= $x ?>");
  EXPECT_EQ(k[0], TokenKind::kKwEcho);
  EXPECT_EQ(k[1], TokenKind::kVariable);
}

TEST(Lexer, Variables) {
  const auto tokens = lex("<?php $_FILES $foo_bar $x9;");
  EXPECT_EQ(tokens[0].text, "_FILES");
  EXPECT_EQ(tokens[1].text, "foo_bar");
  EXPECT_EQ(tokens[2].text, "x9");
}

TEST(Lexer, KeywordsCaseInsensitive) {
  const auto k = kinds("<?php IF Else FUNCTION return;");
  EXPECT_EQ(k[0], TokenKind::kKwIf);
  EXPECT_EQ(k[1], TokenKind::kKwElse);
  EXPECT_EQ(k[2], TokenKind::kKwFunction);
  EXPECT_EQ(k[3], TokenKind::kKwReturn);
}

TEST(Lexer, IdentifierKeepsOriginalCase) {
  const auto tokens = lex("<?php MyFunc();");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "MyFunc");
}

TEST(Lexer, IntLiterals) {
  const auto tokens = lex("<?php 42 0x1F 0;");
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, 31);
  EXPECT_EQ(tokens[2].int_value, 0);
}

TEST(Lexer, FloatLiterals) {
  const auto tokens = lex("<?php 3.14 1e3 2.5e-1;");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 3.14);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.25);
}

TEST(Lexer, SingleQuotedString) {
  const auto tokens = lex(R"(<?php 'a\'b\\c$x';)");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "a'b\\c$x");  // $x is literal in single quotes
}

TEST(Lexer, DoubleQuotedPlain) {
  const auto tokens = lex(R"(<?php "hello\tworld\n";)");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "hello\tworld\n");
}

TEST(Lexer, DoubleQuotedInterpolation) {
  const auto tokens = lex(R"(<?php "pre $name post";)");
  ASSERT_EQ(tokens[0].kind, TokenKind::kTemplateString);
  ASSERT_EQ(tokens[0].parts.size(), 3u);
  EXPECT_EQ(tokens[0].parts[0].text, "pre ");
  EXPECT_EQ(tokens[0].parts[1].kind, InterpPart::Kind::kVariable);
  EXPECT_EQ(tokens[0].parts[1].text, "name");
  EXPECT_EQ(tokens[0].parts[2].text, " post");
}

TEST(Lexer, InterpolationWithIndex) {
  const auto tokens = lex(R"(<?php "x $arr[key] y";)");
  ASSERT_EQ(tokens[0].kind, TokenKind::kTemplateString);
  const InterpPart& p = tokens[0].parts[1];
  EXPECT_EQ(p.text, "arr");
  EXPECT_TRUE(p.has_index);
  EXPECT_EQ(p.index, "key");
}

TEST(Lexer, InterpolationComplexSyntax) {
  const auto tokens = lex(R"(<?php "{$file['name']}";)");
  ASSERT_EQ(tokens[0].kind, TokenKind::kTemplateString);
  const InterpPart& p = tokens[0].parts[0];
  EXPECT_EQ(p.text, "file");
  EXPECT_TRUE(p.has_index);
  EXPECT_EQ(p.index, "name");
}

TEST(Lexer, InterpolationPropertyAccess) {
  const auto tokens = lex(R"(<?php "v: $obj->prop";)");
  const InterpPart& p = tokens[0].parts[1];
  EXPECT_EQ(p.text, "obj");
  EXPECT_EQ(p.property, "prop");
}

TEST(Lexer, EscapedDollarNotInterpolated) {
  const auto tokens = lex(R"(<?php "a \$x b";)");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "a $x b");
}

TEST(Lexer, Heredoc) {
  const auto tokens = lex("<?php $x = <<<EOT\nline1\nline2\nEOT;\n");
  // $x = <string> ;
  EXPECT_EQ(tokens[2].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[2].text, "line1\nline2");
}

TEST(Lexer, HeredocWithInterpolation) {
  const auto tokens = lex("<?php $x = <<<EOT\nhello $name!\nEOT;\n");
  EXPECT_EQ(tokens[2].kind, TokenKind::kTemplateString);
  ASSERT_EQ(tokens[2].parts.size(), 3u);
  EXPECT_EQ(tokens[2].parts[1].text, "name");
}

TEST(Lexer, Nowdoc) {
  const auto tokens = lex("<?php $x = <<<'EOT'\nno $interp\nEOT;\n");
  EXPECT_EQ(tokens[2].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[2].text, "no $interp");
}

TEST(Lexer, LineComments) {
  const auto k = kinds("<?php $a; // comment $b\n$c; # another\n$d;");
  EXPECT_EQ(k.size(), 7u);  // 3 vars + 3 semis + eof
}

TEST(Lexer, BlockComment) {
  const auto k = kinds("<?php $a /* $b; */ ;");
  ASSERT_EQ(k.size(), 3u);
  EXPECT_EQ(k[0], TokenKind::kVariable);
  EXPECT_EQ(k[1], TokenKind::kSemicolon);
}

TEST(Lexer, UnterminatedBlockCommentReportsError) {
  SourceManager sm;
  DiagnosticSink diags;
  const FileId id = sm.add_file("t.php", "<?php /* never closed");
  Arena arena;
  (void)lex_file(*sm.file(id), diags, arena);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnterminatedStringReportsError) {
  SourceManager sm;
  DiagnosticSink diags;
  const FileId id = sm.add_file("t.php", "<?php $x = 'oops");
  Arena arena;
  (void)lex_file(*sm.file(id), diags, arena);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, OperatorDisambiguation) {
  const auto k = kinds("<?php === == = !== != ! <= <=> < <<;");
  EXPECT_EQ(k[0], TokenKind::kIdentical);
  EXPECT_EQ(k[1], TokenKind::kEqual);
  EXPECT_EQ(k[2], TokenKind::kAssign);
  EXPECT_EQ(k[3], TokenKind::kNotIdentical);
  EXPECT_EQ(k[4], TokenKind::kNotEqual);
  EXPECT_EQ(k[5], TokenKind::kBang);
  EXPECT_EQ(k[6], TokenKind::kLessEqual);
  EXPECT_EQ(k[7], TokenKind::kSpaceship);
  EXPECT_EQ(k[8], TokenKind::kLess);
  EXPECT_EQ(k[9], TokenKind::kShiftLeft);
}

TEST(Lexer, CompoundAssignOperators) {
  const auto k = kinds("<?php += -= *= /= .= %= ??=;");
  EXPECT_EQ(k[0], TokenKind::kPlusAssign);
  EXPECT_EQ(k[1], TokenKind::kMinusAssign);
  EXPECT_EQ(k[2], TokenKind::kStarAssign);
  EXPECT_EQ(k[3], TokenKind::kSlashAssign);
  EXPECT_EQ(k[4], TokenKind::kDotAssign);
  EXPECT_EQ(k[5], TokenKind::kPercentAssign);
  EXPECT_EQ(k[6], TokenKind::kCoalesceAssign);
}

TEST(Lexer, ArrowAndScopeOperators) {
  const auto k = kinds("<?php -> => :: ?? ?;");
  EXPECT_EQ(k[0], TokenKind::kArrow);
  EXPECT_EQ(k[1], TokenKind::kDoubleArrow);
  EXPECT_EQ(k[2], TokenKind::kDoubleColon);
  EXPECT_EQ(k[3], TokenKind::kCoalesce);
  EXPECT_EQ(k[4], TokenKind::kQuestion);
}

TEST(Lexer, PhpAngleOperator) {
  const auto k = kinds("<?php $a <> $b;");
  EXPECT_EQ(k[1], TokenKind::kNotEqual);
}

TEST(Lexer, TracksLineNumbers) {
  const auto tokens = lex("<?php\n$a;\n$b;\n");
  EXPECT_EQ(tokens[0].loc.line, 2u);  // $a
  EXPECT_EQ(tokens[2].loc.line, 3u);  // $b
}

TEST(Lexer, IncrementDecrement) {
  const auto k = kinds("<?php $a++ + ++$b;");
  EXPECT_EQ(k[1], TokenKind::kPlusPlus);
  EXPECT_EQ(k[2], TokenKind::kPlus);
  EXPECT_EQ(k[3], TokenKind::kPlusPlus);
}

}  // namespace
}  // namespace uchecker::phplex
