#include "core/detector/scan_many.h"

#include <gtest/gtest.h>

#include "core/uchecker.h"  // also verifies the umbrella header compiles
#include "corpus/corpus.h"

namespace uchecker::core {
namespace {

std::vector<Application> sample_apps() {
  std::vector<Application> apps;
  for (int i = 0; i < 10; ++i) {
    corpus::SynthSpec spec;
    spec.name = "batch-" + std::to_string(i);
    spec.sequential_ifs = 1 + (i % 4);
    spec.vulnerable = (i % 2) == 0;
    spec.filler_loc = 100;
    apps.push_back(corpus::synth_app(spec));
  }
  return apps;
}

TEST(ScanMany, MatchesSerialResults) {
  const std::vector<Application> apps = sample_apps();
  Detector detector;
  const std::vector<ScanReport> parallel = scan_many(detector, apps, 4);
  ASSERT_EQ(parallel.size(), apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const ScanReport serial = detector.scan(apps[i]);
    EXPECT_EQ(parallel[i].app_name, serial.app_name);
    EXPECT_EQ(parallel[i].verdict, serial.verdict) << apps[i].name;
    EXPECT_EQ(parallel[i].paths, serial.paths) << apps[i].name;
    EXPECT_EQ(parallel[i].objects, serial.objects) << apps[i].name;
    EXPECT_EQ(parallel[i].findings.size(), serial.findings.size());
  }
}

TEST(ScanMany, VerdictsAlternateWithSpec) {
  const std::vector<Application> apps = sample_apps();
  const std::vector<ScanReport> reports = scan_many(Detector(), apps, 4);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Verdict expected =
        (i % 2) == 0 ? Verdict::kVulnerable : Verdict::kNotVulnerable;
    EXPECT_EQ(reports[i].verdict, expected) << i;
  }
}

TEST(ScanMany, EmptyBatch) {
  EXPECT_TRUE(scan_many(Detector(), {}, 4).empty());
}

TEST(ScanMany, OptionsOverloadMatchesDefault) {
  const std::vector<Application> apps = sample_apps();
  ScanManyOptions options;
  options.threads = 4;
  options.app_timeout = std::chrono::seconds(60);  // generous: no effect
  const std::vector<ScanReport> reports =
      scan_many(Detector(), apps, options);
  ASSERT_EQ(reports.size(), apps.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Verdict expected =
        (i % 2) == 0 ? Verdict::kVulnerable : Verdict::kNotVulnerable;
    EXPECT_EQ(reports[i].verdict, expected) << i;
    EXPECT_FALSE(reports[i].deadline_exceeded) << i;
    EXPECT_TRUE(reports[i].errors.empty()) << i;
  }
}

TEST(ScanMany, SingleThreadFallback) {
  const std::vector<Application> apps = sample_apps();
  const std::vector<ScanReport> reports = scan_many(Detector(), apps, 1);
  EXPECT_EQ(reports.size(), apps.size());
}

TEST(ScanMany, DefaultThreadCount) {
  std::vector<Application> apps = sample_apps();
  apps.resize(2);
  const std::vector<ScanReport> reports = scan_many(Detector(), apps);
  EXPECT_EQ(reports.size(), 2u);
}

TEST(ScanMany, CorpusSubsetParallelStable) {
  // Run a slice of the real corpus in parallel twice; results identical.
  std::vector<Application> apps;
  for (const auto& entry : corpus::new_vulnerable()) apps.push_back(entry.app);
  for (auto& entry : corpus::benign()) {
    if (apps.size() >= 8) break;
    apps.push_back(entry.app);
  }
  Detector detector;
  const auto a = scan_many(detector, apps, 4);
  const auto b = scan_many(detector, apps, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].verdict, b[i].verdict) << apps[i].name;
    EXPECT_EQ(a[i].paths, b[i].paths) << apps[i].name;
  }
}

}  // namespace
}  // namespace uchecker::core
