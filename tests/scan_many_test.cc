#include "core/detector/scan_many.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "core/uchecker.h"  // also verifies the umbrella header compiles
#include "corpus/corpus.h"
#include "support/fault_injector.h"
#include "support/telemetry.h"

namespace uchecker::core {
namespace {

std::vector<Application> sample_apps() {
  std::vector<Application> apps;
  for (int i = 0; i < 10; ++i) {
    corpus::SynthSpec spec;
    spec.name = "batch-" + std::to_string(i);
    spec.sequential_ifs = 1 + (i % 4);
    spec.vulnerable = (i % 2) == 0;
    spec.filler_loc = 100;
    apps.push_back(corpus::synth_app(spec));
  }
  return apps;
}

TEST(ScanMany, MatchesSerialResults) {
  const std::vector<Application> apps = sample_apps();
  Detector detector;
  const std::vector<ScanReport> parallel = scan_many(detector, apps, 4);
  ASSERT_EQ(parallel.size(), apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const ScanReport serial = detector.scan(apps[i]);
    EXPECT_EQ(parallel[i].app_name, serial.app_name);
    EXPECT_EQ(parallel[i].verdict, serial.verdict) << apps[i].name;
    EXPECT_EQ(parallel[i].paths, serial.paths) << apps[i].name;
    EXPECT_EQ(parallel[i].objects, serial.objects) << apps[i].name;
    EXPECT_EQ(parallel[i].findings.size(), serial.findings.size());
  }
}

TEST(ScanMany, VerdictsAlternateWithSpec) {
  const std::vector<Application> apps = sample_apps();
  const std::vector<ScanReport> reports = scan_many(Detector(), apps, 4);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Verdict expected =
        (i % 2) == 0 ? Verdict::kVulnerable : Verdict::kNotVulnerable;
    EXPECT_EQ(reports[i].verdict, expected) << i;
  }
}

TEST(ScanMany, EmptyBatch) {
  EXPECT_TRUE(scan_many(Detector(), {}, 4).empty());
}

TEST(ScanMany, OptionsOverloadMatchesDefault) {
  const std::vector<Application> apps = sample_apps();
  ScanManyOptions options;
  options.threads = 4;
  options.app_timeout = std::chrono::seconds(60);  // generous: no effect
  const std::vector<ScanReport> reports =
      scan_many(Detector(), apps, options);
  ASSERT_EQ(reports.size(), apps.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Verdict expected =
        (i % 2) == 0 ? Verdict::kVulnerable : Verdict::kNotVulnerable;
    EXPECT_EQ(reports[i].verdict, expected) << i;
    EXPECT_FALSE(reports[i].deadline_exceeded) << i;
    EXPECT_TRUE(reports[i].errors.empty()) << i;
  }
}

TEST(ScanMany, SingleThreadFallback) {
  const std::vector<Application> apps = sample_apps();
  const std::vector<ScanReport> reports = scan_many(Detector(), apps, 1);
  EXPECT_EQ(reports.size(), apps.size());
}

TEST(ScanMany, DefaultThreadCount) {
  std::vector<Application> apps = sample_apps();
  apps.resize(2);
  const std::vector<ScanReport> reports = scan_many(Detector(), apps);
  EXPECT_EQ(reports.size(), 2u);
}

TEST(ScanMany, CorpusSubsetParallelStable) {
  // Run a slice of the real corpus in parallel twice; results identical.
  std::vector<Application> apps;
  for (const auto& entry : corpus::new_vulnerable()) apps.push_back(entry.app);
  for (auto& entry : corpus::benign()) {
    if (apps.size() >= 8) break;
    apps.push_back(entry.app);
  }
  Detector detector;
  const auto a = scan_many(detector, apps, 4);
  const auto b = scan_many(detector, apps, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].verdict, b[i].verdict) << apps[i].name;
    EXPECT_EQ(a[i].paths, b[i].paths) << apps[i].name;
  }
}

// --- Retry backoff: the schedule must be exponential, jittered,
// deterministic in (seed, app, attempt), and off by default.

TEST(RetryBackoff, DisabledByDefault) {
  const ScanManyOptions options;
  EXPECT_EQ(retry_backoff_delay(options, "any-app", 0).count(), 0);
  EXPECT_EQ(retry_backoff_delay(options, "any-app", 5).count(), 0);
}

TEST(RetryBackoff, DeterministicForSameInputs) {
  ScanManyOptions options;
  options.retry_backoff = std::chrono::milliseconds{100};
  options.retry_jitter_seed = 42;
  for (unsigned attempt = 0; attempt < 4; ++attempt) {
    EXPECT_EQ(retry_backoff_delay(options, "plugin-a", attempt),
              retry_backoff_delay(options, "plugin-a", attempt));
  }
}

TEST(RetryBackoff, GrowsExponentiallyWithBoundedJitter) {
  ScanManyOptions options;
  options.retry_backoff = std::chrono::milliseconds{100};
  options.retry_jitter_seed = 7;
  for (unsigned attempt = 0; attempt < 5; ++attempt) {
    const std::int64_t base = 100LL << attempt;
    const std::int64_t delay =
        retry_backoff_delay(options, "plugin-a", attempt).count();
    EXPECT_GE(delay, base) << attempt;
    EXPECT_LE(delay, base + base / 2) << attempt;
  }
}

TEST(RetryBackoff, JitterDecorrelatesAppsAndSeeds) {
  ScanManyOptions options;
  options.retry_backoff = std::chrono::milliseconds{10'000};
  options.retry_jitter_seed = 1;
  // With a 5000ms jitter range, distinct apps/seeds colliding on every
  // attempt is astronomically unlikely; one differing attempt suffices.
  bool apps_differ = false;
  bool seeds_differ = false;
  ScanManyOptions reseeded = options;
  reseeded.retry_jitter_seed = 2;
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    apps_differ |= retry_backoff_delay(options, "plugin-a", attempt) !=
                   retry_backoff_delay(options, "plugin-b", attempt);
    seeds_differ |= retry_backoff_delay(options, "plugin-a", attempt) !=
                    retry_backoff_delay(reseeded, "plugin-a", attempt);
  }
  EXPECT_TRUE(apps_differ);
  EXPECT_TRUE(seeds_differ);
}

TEST(RetryBackoff, CappedAtSixtySeconds) {
  ScanManyOptions options;
  options.retry_backoff = std::chrono::milliseconds{1000};
  // 1000 * 2^40 would overflow naive shifting; the cap absorbs it.
  EXPECT_EQ(retry_backoff_delay(options, "app", 40).count(), 60'000);
  EXPECT_EQ(retry_backoff_delay(options, "app", 63).count(), 60'000);
}

TEST(RetryBackoff, TransientRetryWaitsAndRecovers) {
  FaultInjector::instance().disarm_all();
  FaultInjector::instance().arm("interp",
                                FaultInjector::Action::kThrowTransient,
                                std::chrono::milliseconds{0}, /*max_hits=*/1);
  std::vector<Application> apps = sample_apps();
  apps.resize(1);
  ScanManyOptions options;
  options.threads = 1;
  options.max_retries = 1;
  options.retry_backoff = std::chrono::milliseconds{30};
  telemetry::Telemetry telemetry;
  ScanOptions scan_options;
  scan_options.telemetry = &telemetry;
  const auto start = std::chrono::steady_clock::now();
  const std::vector<ScanReport> reports =
      scan_many(Detector(scan_options), apps, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  FaultInjector::instance().disarm_all();

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].errors.empty());
  const std::chrono::milliseconds expected =
      retry_backoff_delay(options, apps[0].name, 0);
  EXPECT_GE(elapsed, expected);
  EXPECT_EQ(telemetry.metrics().counter("fleet.app_retries").value(), 1u);
  EXPECT_GE(telemetry.metrics().counter("fleet.retry_backoff_ms").value(),
            static_cast<std::uint64_t>(expected.count()));
}

TEST(RetryBackoff, CancellationAbortsBackoffPromptly) {
  FaultInjector::instance().disarm_all();
  // Every interp attempt fails transiently, so the driver would retry
  // into a 10s backoff — cancellation must cut that short.
  FaultInjector::instance().arm("interp",
                                FaultInjector::Action::kThrowTransient,
                                std::chrono::milliseconds{0}, -1);
  std::vector<Application> apps = sample_apps();
  apps.resize(1);
  CancellationSource cancel;
  ScanManyOptions options;
  options.threads = 1;
  options.max_retries = 3;
  options.retry_backoff = std::chrono::milliseconds{10'000};
  options.cancel = cancel.token();

  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
    cancel.cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  const std::vector<ScanReport> reports =
      scan_many(Detector(), apps, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  canceller.join();
  FaultInjector::instance().disarm_all();

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_LT(elapsed, std::chrono::seconds{5});
}

}  // namespace
}  // namespace uchecker::core
