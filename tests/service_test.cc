// End-to-end tests of the scand service core and its socket protocol:
// durable verdict/solver caches (warm hits byte-identical to the cold
// scan, survival across restart and simulated crash), corruption
// recovery (a damaged record is detected and recomputed, never
// trusted), backpressure, the watchdog/quarantine path for wedged
// scans, and the line-JSON wire protocol.
#include "service/scan_service.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/detector/report_io.h"
#include "corpus/corpus.h"
#include "service/scan_server.h"
#include "support/fault_injector.h"
#include "support/jsonlite.h"
#include "support/logging.h"
#include "support/telemetry.h"
#include "support/trace_export.h"

namespace uchecker::service {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

core::Application synth(const std::string& name, bool vulnerable) {
  corpus::SynthSpec spec;
  spec.name = name;
  spec.sequential_ifs = 2;
  spec.vulnerable = vulnerable;
  spec.filler_loc = 60;
  return corpus::synth_app(spec);
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    dir_ = fs::temp_directory_path() /
           ("uchecker_service_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().disarm_all();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string state_dir(const char* sub = "state") const {
    return (dir_ / sub).string();
  }

  ServiceOptions base_options(const char* sub = "state") const {
    ServiceOptions options;
    options.state_dir = state_dir(sub);
    options.workers = 2;
    return options;
  }

  fs::path dir_;
};

TEST_F(ServiceTest, VerdictKeyIsContentAndOptionSensitive) {
  const core::Application app = synth("key-app", true);
  core::ScanOptions scan;
  const std::string key = ScanService::verdict_key(app, scan);
  EXPECT_EQ(key.size(), 16u);
  EXPECT_EQ(key, ScanService::verdict_key(app, scan));

  // File order must not matter; file content and options must.
  core::Application reordered = app;
  std::reverse(reordered.files.begin(), reordered.files.end());
  EXPECT_EQ(key, ScanService::verdict_key(reordered, scan));

  core::Application edited = app;
  edited.files[0].content += " ";
  EXPECT_NE(key, ScanService::verdict_key(edited, scan));

  core::ScanOptions explain = scan;
  explain.explain = true;
  EXPECT_NE(key, ScanService::verdict_key(app, explain));
}

TEST_F(ServiceTest, WarmHitIsByteIdenticalToColdScan) {
  ScanService service(base_options());
  ASSERT_TRUE(service.start());
  const core::Application app = synth("warm", true);

  const auto cold = service.scan(app);
  ASSERT_TRUE(cold.has_value());
  EXPECT_FALSE(cold->from_cache);
  EXPECT_EQ(cold->report.verdict, core::Verdict::kVulnerable);
  EXPECT_EQ(cold->report_json, core::to_json(cold->report));

  const auto warm = service.scan(app);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->from_cache);
  // The replay is the stored bytes of the original scan: identical.
  EXPECT_EQ(warm->report_json, cold->report_json);
  EXPECT_EQ(warm->report.verdict, cold->report.verdict);
  EXPECT_EQ(service.verdict_store_stats().hits, 1u);
  service.stop();
}

TEST_F(ServiceTest, VerdictsSurviveRestart) {
  const core::Application vuln = synth("restart-vuln", true);
  const core::Application benign = synth("restart-benign", false);
  std::string cold_vuln_json;
  std::string cold_benign_json;
  {
    ScanService service(base_options());
    ASSERT_TRUE(service.start());
    cold_vuln_json = service.scan(vuln)->report_json;
    cold_benign_json = service.scan(benign)->report_json;
    service.stop();
  }
  {
    ScanService service(base_options());
    ASSERT_TRUE(service.start());
    EXPECT_FALSE(service.verdict_store_stats().cold_start);
    const auto warm_vuln = service.scan(vuln);
    const auto warm_benign = service.scan(benign);
    ASSERT_TRUE(warm_vuln.has_value());
    ASSERT_TRUE(warm_benign.has_value());
    EXPECT_TRUE(warm_vuln->from_cache);
    EXPECT_TRUE(warm_benign->from_cache);
    EXPECT_EQ(warm_vuln->report_json, cold_vuln_json);
    EXPECT_EQ(warm_benign->report_json, cold_benign_json);
    service.stop();
  }
}

TEST_F(ServiceTest, SolverOutcomesSurviveRestart) {
  {
    ScanService service(base_options());
    ASSERT_TRUE(service.start());
    (void)service.scan(synth("solver-a", true));
    service.stop();
    EXPECT_GT(service.solver_cache().size(), 0u);
  }
  {
    ScanService service(base_options());
    ASSERT_TRUE(service.start());
    // Preloaded from disk before any scan.
    EXPECT_GT(service.solver_cache().size(), 0u);
    // A *different* app with the same vulnerable shape reaches
    // byte-identical sink constraints: the persisted outcome answers
    // without a fresh Z3 call.
    const auto report = service.scan(synth("solver-b", true));
    ASSERT_TRUE(report.has_value());
    EXPECT_FALSE(report->from_cache);  // different verdict key...
    EXPECT_GT(service.solver_cache().hits(), 0u);  // ...same constraints
    EXPECT_EQ(report->report.verdict, core::Verdict::kVulnerable);
    service.stop();
  }
}

TEST_F(ServiceTest, CrashWithoutDrainStillRecovers) {
  const core::Application app = synth("crash", true);
  std::string cold_json;
  {
    ScanService service(base_options());
    ASSERT_TRUE(service.start());
    cold_json = service.scan(app)->report_json;
    // Simulate kill -9: snapshot the store files as they are mid-run
    // (every put is flushed to the OS at append time), with no drain,
    // no final flush, no compaction.
    fs::copy(state_dir(), state_dir("crashed"), fs::copy_options::recursive);
    service.stop();
  }
  ServiceOptions options = base_options("crashed");
  ScanService service(options);
  ASSERT_TRUE(service.start());
  EXPECT_FALSE(service.verdict_store_stats().cold_start);
  const auto warm = service.scan(app);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->report_json, cold_json);
  service.stop();
}

TEST_F(ServiceTest, CorruptVerdictRecordIsRecomputedNotTrusted) {
  const core::Application app = synth("corrupt", true);
  {
    ScanService service(base_options());
    ASSERT_TRUE(service.start());
    const auto cold = service.scan(app);
    ASSERT_TRUE(cold.has_value());
    EXPECT_FALSE(cold->from_cache);
    service.stop();
  }

  // Flip one bit inside the persisted record's payload.
  const std::string path = state_dir() + "/verdicts.kv";
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() - 16] ^= 0x04;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  // Restart: the checksum catches the damage, the record is dropped
  // (counted corrupt) and the verdict is recomputed — and the fresh
  // scan agrees with a cacheless one on everything that matters.
  ScanService service(base_options());
  ASSERT_TRUE(service.start());
  EXPECT_GT(service.verdict_store_stats().corrupt, 0u);
  const auto recomputed = service.scan(app);
  ASSERT_TRUE(recomputed.has_value());
  EXPECT_FALSE(recomputed->from_cache);

  const core::ScanReport direct = core::Detector().scan(app);
  EXPECT_EQ(recomputed->report.verdict, direct.verdict);
  ASSERT_EQ(recomputed->report.findings.size(), direct.findings.size());
  for (std::size_t i = 0; i < direct.findings.size(); ++i) {
    EXPECT_EQ(recomputed->report.findings[i].fingerprint,
              direct.findings[i].fingerprint);
  }
  service.stop();
}

TEST_F(ServiceTest, CorpusVerdictsMatchCachelessAfterCorruption) {
  std::vector<core::Application> apps;
  apps.push_back(synth("corpus-v", true));
  apps.push_back(synth("corpus-b", false));
  for (const auto& entry : corpus::new_vulnerable()) {
    apps.push_back(entry.app);
    if (apps.size() >= 4) break;
  }

  {
    ScanService service(base_options());
    ASSERT_TRUE(service.start());
    for (const auto& app : apps) (void)service.scan(app);
    service.stop();
  }
  // Damage both stores, then require every verdict to match a cacheless
  // run byte-for-byte at the JSON level (modulo wall-clock timing the
  // fresh scans produce themselves).
  for (const char* name : {"/verdicts.kv", "/solver.kv"}) {
    const std::string path = state_dir() + name;
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open()) << path;
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    ASSERT_GT(size, 40);
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  ScanService service(base_options());
  ASSERT_TRUE(service.start());
  const core::Detector cacheless;
  for (const auto& app : apps) {
    const auto served = service.scan(app);
    ASSERT_TRUE(served.has_value()) << app.name;
    const core::ScanReport direct = cacheless.scan(app);
    EXPECT_EQ(core::verdict_slug(served->report.verdict),
              core::verdict_slug(direct.verdict))
        << app.name;
    ASSERT_EQ(served->report.findings.size(), direct.findings.size())
        << app.name;
    for (std::size_t i = 0; i < direct.findings.size(); ++i) {
      EXPECT_EQ(served->report.findings[i].fingerprint,
                direct.findings[i].fingerprint);
    }
  }
  service.stop();
}

TEST_F(ServiceTest, InMemoryModeCachesWithoutPersistence) {
  ServiceOptions options;  // no state_dir
  ScanService service(options);
  ASSERT_TRUE(service.start());
  const core::Application app = synth("mem", true);
  const auto cold = service.scan(app);
  const auto warm = service.scan(app);
  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(warm.has_value());
  EXPECT_FALSE(cold->from_cache);
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->report_json, cold->report_json);
  service.stop();
}

TEST_F(ServiceTest, BackpressureRejectsWhenQueueFull) {
  telemetry::Telemetry telemetry;
  ServiceOptions options = base_options();
  options.workers = 1;
  options.max_queue = 1;
  options.telemetry = &telemetry;
  ScanService service(options);
  ASSERT_TRUE(service.start());

  // Make each scan slow enough to hold the single worker.
  FaultInjector::instance().arm("interp", FaultInjector::Action::kStall,
                                300ms, /*max_hits=*/-1);
  auto first = service.submit(synth("bp-0", false));
  ASSERT_TRUE(first.valid());
  // Wait for the worker to pick it up so the queue is empty again.
  for (int i = 0; i < 200 && service.queue_depth() > 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(service.queue_depth(), 0u);

  auto queued = service.submit(synth("bp-1", false));
  ASSERT_TRUE(queued.valid());  // fills the queue
  auto rejected = service.submit(synth("bp-2", false));
  EXPECT_FALSE(rejected.valid());  // bounded: immediate backpressure
  EXPECT_GE(telemetry.metrics().counter("scand.overloaded").value(), 1u);

  FaultInjector::instance().disarm_all();
  (void)first.get();
  (void)queued.get();
  service.stop();
}

TEST_F(ServiceTest, WatchdogCancelsWedgedScanAndQuarantines) {
  telemetry::Telemetry telemetry;
  logging::Logger logger;
  std::vector<std::string> log_lines;
  logger.set_sink([&log_lines](const std::string& line) {
    log_lines.push_back(line);
  });
  ServiceOptions options = base_options();
  options.workers = 1;
  options.request_timeout = 50ms;
  options.watchdog_grace = 50ms;
  options.watchdog_poll = 10ms;
  options.telemetry = &telemetry;
  // Per-scan telemetry feeds the flight recorder (phase transitions are
  // mirrored off the scan trace), exactly as scand wires it.
  options.scan.telemetry = &telemetry;
  options.logger = &logger;
  const core::Application app = synth("wedged", true);
  const std::string key = ScanService::verdict_key(app, options.scan);
  {
    ScanService service(options);
    ASSERT_TRUE(service.start());
    // The stall ignores deadlines — exactly a wedged scan.
    FaultInjector::instance().arm("interp", FaultInjector::Action::kStall,
                                  1500ms, /*max_hits=*/1);
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcome = service.scan(app);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    ASSERT_TRUE(outcome.has_value());
    // The watchdog answered long before the 1.5s stall released.
    EXPECT_LT(elapsed, 1s);
    EXPECT_EQ(outcome->report.verdict, core::Verdict::kAnalysisError);
    EXPECT_TRUE(outcome->quarantined);
    EXPECT_FALSE(outcome->trace_id.empty());
    EXPECT_GE(telemetry.metrics()
                  .counter("scand.watchdog_cancellations")
                  .value(),
              1u);
    EXPECT_TRUE(service.is_quarantined(app));

    // The watchdog dumped the wedged worker's flight recorder next to
    // the quarantine entry, naming the phase the scan was stuck in.
    const std::string dump_path = state_dir() + "/flightrec-" + key + ".json";
    ASSERT_TRUE(fs::exists(dump_path)) << dump_path;
    std::ifstream dump_in(dump_path);
    std::ostringstream dump_buf;
    dump_buf << dump_in.rdbuf();
    const auto dump = jsonlite::parse(dump_buf.str());
    ASSERT_TRUE(dump.has_value()) << dump_buf.str();
    const jsonlite::Value* wedged_phase = dump->find("wedged_phase");
    ASSERT_NE(wedged_phase, nullptr);
    ASSERT_TRUE(wedged_phase->is_string()) << dump_buf.str();
    EXPECT_EQ(wedged_phase->str(), "interp") << dump_buf.str();

    // And logged the cancellation with the same wedged phase.
    bool saw_watchdog_line = false;
    for (const std::string& line : log_lines) {
      const auto parsed = jsonlite::parse(line);
      ASSERT_TRUE(parsed.has_value()) << line;
      if (parsed->find("event")->str() != "watchdog_cancel") continue;
      saw_watchdog_line = true;
      EXPECT_EQ(parsed->find("trace_id")->str(), outcome->trace_id);
      EXPECT_EQ(parsed->find("wedged_phase")->str(), "interp");
    }
    EXPECT_TRUE(saw_watchdog_line);

    // Same content again: answered from quarantine, no scan attempted.
    FaultInjector::instance().disarm_all();
    const auto again = service.scan(app);
    ASSERT_TRUE(again.has_value());
    EXPECT_TRUE(again->quarantined);
    EXPECT_EQ(again->report.verdict, core::Verdict::kAnalysisError);
    EXPECT_GE(telemetry.metrics().counter("scand.quarantine_hits").value(),
              1u);

    // The replacement worker keeps the service serving other content.
    const auto other = service.scan(synth("healthy", false));
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(other->report.verdict, core::Verdict::kNotVulnerable);
    service.stop();
  }
  // Quarantine is durable: a restarted daemon still refuses the content.
  ScanService restarted(options);
  ASSERT_TRUE(restarted.start());
  EXPECT_TRUE(restarted.is_quarantined(app));
  restarted.stop();
}

TEST_F(ServiceTest, TraceIdPropagatesEndToEnd) {
  telemetry::Telemetry telemetry;
  logging::Logger logger;
  std::vector<std::string> log_lines;
  logger.set_sink([&log_lines](const std::string& line) {
    log_lines.push_back(line);
  });
  ServiceOptions options = base_options();
  options.telemetry = &telemetry;
  options.scan.telemetry = &telemetry;
  options.logger = &logger;
  ScanService service(options);
  ASSERT_TRUE(service.start());
  const core::Application app = synth("traced", true);

  const auto cold = service.scan(app, "feedc0dedeadbeef");
  ASSERT_TRUE(cold.has_value());
  // One ID all the way through: the outcome envelope, the parsed
  // report, the stored/rendered report JSON, the metric exemplar, and
  // the request_done log line.
  EXPECT_EQ(cold->trace_id, "feedc0dedeadbeef");
  EXPECT_EQ(cold->report.trace_id, "feedc0dedeadbeef");
  EXPECT_NE(cold->report_json.find("\"trace_id\": \"feedc0dedeadbeef\""),
            std::string::npos);
  const auto exemplars = telemetry.metrics().exemplars();
  const auto request_exemplar = exemplars.find("scand.request_ms");
  ASSERT_NE(request_exemplar, exemplars.end());
  EXPECT_EQ(request_exemplar->second, "feedc0dedeadbeef");
  bool saw_request_line = false;
  for (const std::string& line : log_lines) {
    const auto parsed = jsonlite::parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    if (parsed->find("event")->str() != "request_done") continue;
    saw_request_line = true;
    EXPECT_EQ(parsed->find("trace_id")->str(), "feedc0dedeadbeef");
  }
  EXPECT_TRUE(saw_request_line);
  // The Chrome trace carries the ID in its span args.
  EXPECT_NE(telemetry::to_chrome_trace_json(telemetry)
                .find("feedc0dedeadbeef"),
            std::string::npos);

  // A warm replay serves the original scan's bytes (original trace ID
  // inside) but the outcome envelope carries *this* request's ID.
  const auto warm = service.scan(app, "0123456789abcdef");
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->trace_id, "0123456789abcdef");
  EXPECT_EQ(warm->report_json, cold->report_json);

  // No caller-supplied ID: the service mints one, never leaves it empty.
  const auto minted = service.scan(synth("traced-minted", false));
  ASSERT_TRUE(minted.has_value());
  EXPECT_EQ(minted->trace_id.size(), 16u);
  service.stop();
}

TEST_F(ServiceTest, TopRequestsRanksByWallTime) {
  ServiceOptions options = base_options();
  options.top_history = 8;
  ScanService service(options);
  ASSERT_TRUE(service.start());
  const core::Application big = synth("top-big", true);
  (void)service.scan(big);
  (void)service.scan(synth("top-small", false));
  (void)service.scan(big);  // warm hit, near-zero cost

  const auto top = service.top_requests(10);
  ASSERT_EQ(top.size(), 3u);
  // Sorted most-expensive first.
  EXPECT_GE(top[0].total_ms, top[1].total_ms);
  EXPECT_GE(top[1].total_ms, top[2].total_ms);
  for (const RequestCost& cost : top) {
    EXPECT_FALSE(cost.app.empty());
    EXPECT_EQ(cost.trace_id.size(), 16u);
    EXPECT_FALSE(cost.verdict.empty());
  }
  // The cold scan of the vulnerable app attributes cost to its roots.
  bool saw_cold_big = false;
  for (const RequestCost& cost : top) {
    if (cost.app == big.name && !cost.from_cache) {
      saw_cold_big = true;
      EXPECT_FALSE(cost.top_root.empty());
      EXPECT_GT(cost.solver_calls, 0u);
    }
  }
  EXPECT_TRUE(saw_cold_big);
  // The bounded history keeps only the newest top_history entries.
  for (int i = 0; i < 10; ++i) {
    (void)service.scan(synth("top-filler-" + std::to_string(i), false));
  }
  EXPECT_EQ(service.top_requests(100).size(), 8u);
  service.stop();
}

TEST_F(ServiceTest, StopDrainsQueuedRequests) {
  ServiceOptions options = base_options();
  options.workers = 1;
  options.max_queue = 8;
  ScanService service(options);
  ASSERT_TRUE(service.start());
  std::vector<std::future<ScanOutcome>> futures;
  for (int i = 0; i < 4; ++i) {
    auto f = service.submit(synth("drain-" + std::to_string(i), i % 2 == 0));
    ASSERT_TRUE(f.valid());
    futures.push_back(std::move(f));
  }
  service.stop();  // must answer everything already accepted
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    const ScanOutcome outcome = f.get();
    EXPECT_NE(outcome.report_json, "");
  }
}

TEST_F(ServiceTest, UnwritableStateDirDegradesToInMemory) {
  ServiceOptions options;
  options.state_dir = "/proc/definitely/not/writable/state";
  ScanService service(options);
  ASSERT_TRUE(service.start());
  const auto outcome = service.scan(synth("nodisk", true));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->report.verdict, core::Verdict::kVulnerable);
  service.stop();
}

// ---------------------------------------------------------------------------
// Wire protocol

class ServerTest : public ServiceTest {
 protected:
  [[nodiscard]] std::string socket_path() const {
    // sun_path is ~108 bytes; keep it short and unique.
    return "/tmp/ucd_" + std::to_string(::getpid()) + ".sock";
  }

  static std::string roundtrip(const std::string& path,
                               const std::string& request) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    const std::string line = request + "\n";
    EXPECT_EQ(::send(fd, line.data(), line.size(), 0),
              static_cast<ssize_t>(line.size()));
    std::string response;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n') response.push_back(c);
    ::close(fd);
    return response;
  }
};

TEST_F(ServerTest, HandleRequestValidation) {
  ScanService service(base_options());
  ASSERT_TRUE(service.start());
  ScanServer server(service, ServerOptions{socket_path()});

  auto expect_error = [&](const std::string& line) {
    const auto parsed = jsonlite::parse(server.handle_request(line));
    ASSERT_TRUE(parsed.has_value()) << line;
    const jsonlite::Value* status = parsed->find("status");
    ASSERT_NE(status, nullptr);
    EXPECT_EQ(status->str(), "error") << line;
  };
  expect_error("not json at all");
  expect_error("[1, 2, 3]");
  expect_error("{}");
  expect_error("{\"op\": 7}");
  expect_error("{\"op\": \"launch-missiles\"}");
  expect_error("{\"op\": \"scan\"}");
  expect_error("{\"op\": \"scan\", \"path\": \"/nonexistent/nowhere\"}");
  expect_error("{\"op\": \"scan\", \"app\": {\"name\": \"x\"}}");
  expect_error(
      "{\"op\": \"scan\", \"app\": {\"name\": \"x\", \"files\": []}}");

  const auto pong = jsonlite::parse(server.handle_request("{\"op\":\"ping\"}"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->find("status")->str(), "ok");
  service.stop();
}

TEST_F(ServerTest, SocketScanStatusShutdown) {
  telemetry::Telemetry telemetry;
  ServiceOptions options = base_options();
  options.telemetry = &telemetry;
  ScanService service(options);
  ASSERT_TRUE(service.start());
  ScanServer server(service, ServerOptions{socket_path(), 20ms});
  ASSERT_TRUE(server.listen());
  std::thread runner([&server] { EXPECT_EQ(server.run(), 0); });

  const std::string pong = roundtrip(socket_path(), "{\"op\": \"ping\"}");
  EXPECT_NE(pong.find("\"pong\": true"), std::string::npos) << pong;

  // Scan an on-disk tree through the socket.
  const fs::path tree = dir_ / "webapp";
  fs::create_directories(tree);
  std::ofstream(tree / "upload.php")
      << "<?php\n"
         "move_uploaded_file($_FILES['f']['tmp_name'], "
         "'/u/' . $_FILES['f']['name']);\n";
  const std::string scan_request =
      "{\"op\": \"scan\", \"path\": \"" + tree.string() + "\"}";
  const std::string cold = roundtrip(socket_path(), scan_request);
  const auto cold_json = jsonlite::parse(cold);
  ASSERT_TRUE(cold_json.has_value()) << cold;
  EXPECT_EQ(cold_json->find("status")->str(), "ok");
  EXPECT_EQ(cold_json->find("verdict")->str(), "vulnerable");
  EXPECT_FALSE(cold_json->find("cached")->boolean());
  ASSERT_NE(cold_json->find("report"), nullptr);
  EXPECT_TRUE(cold_json->find("report")->is_object());

  const std::string warm = roundtrip(socket_path(), scan_request);
  const auto warm_json = jsonlite::parse(warm);
  ASSERT_TRUE(warm_json.has_value());
  EXPECT_TRUE(warm_json->find("cached")->boolean());
  EXPECT_EQ(warm_json->find("verdict")->str(), "vulnerable");

  // SARIF format variant.
  const std::string sarif = roundtrip(
      socket_path(),
      "{\"op\": \"scan\", \"path\": \"" + tree.string() +
          "\", \"format\": \"sarif\"}");
  const auto sarif_json = jsonlite::parse(sarif);
  ASSERT_TRUE(sarif_json.has_value());
  ASSERT_NE(sarif_json->find("sarif"), nullptr);
  EXPECT_NE(sarif_json->find("sarif")->find("runs"), nullptr);

  const std::string status = roundtrip(socket_path(), "{\"op\": \"status\"}");
  const auto status_json = jsonlite::parse(status);
  ASSERT_TRUE(status_json.has_value()) << status;
  const jsonlite::Value* counters = status_json->find("counters");
  ASSERT_NE(counters, nullptr);
  const jsonlite::Value* requests = counters->find("scand.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->number(), 3.0);
  const jsonlite::Value* gauges = status_json->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("scand.verdict_cache.hits"), nullptr);

  const std::string bye = roundtrip(socket_path(), "{\"op\": \"shutdown\"}");
  EXPECT_NE(bye.find("\"stopping\": true"), std::string::npos);
  runner.join();
  service.stop();
}

TEST_F(ServerTest, ObservabilityOps) {
  telemetry::Telemetry telemetry;
  ServiceOptions options = base_options();
  options.telemetry = &telemetry;
  options.scan.telemetry = &telemetry;
  ScanService service(options);
  ASSERT_TRUE(service.start());
  ScanServer server(service, ServerOptions{socket_path()});

  // ping / status identify the daemon: engine version, pid, uptime.
  const auto pong = jsonlite::parse(server.handle_request("{\"op\":\"ping\"}"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->find("version")->str(), std::string(core::kEngineVersion));
  EXPECT_DOUBLE_EQ(pong->find("pid")->number(),
                   static_cast<double>(::getpid()));
  EXPECT_GE(pong->find("uptime_s")->number(), 0.0);
  const auto status =
      jsonlite::parse(server.handle_request("{\"op\":\"status\"}"));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->find("version")->str(), std::string(core::kEngineVersion));

  // A scan with a client trace ID: echoed in the envelope and stamped
  // into the report.
  const fs::path tree = dir_ / "webapp";
  fs::create_directories(tree);
  std::ofstream(tree / "upload.php")
      << "<?php\n"
         "move_uploaded_file($_FILES['f']['tmp_name'], "
         "'/u/' . $_FILES['f']['name']);\n";
  const auto scanned = jsonlite::parse(server.handle_request(
      "{\"op\": \"scan\", \"path\": \"" + tree.string() +
      "\", \"trace_id\": \"beefbeefbeefbeef\"}"));
  ASSERT_TRUE(scanned.has_value());
  EXPECT_EQ(scanned->find("trace_id")->str(), "beefbeefbeefbeef");
  EXPECT_EQ(scanned->find("report")->find("trace_id")->str(),
            "beefbeefbeefbeef");

  // metrics: a Prometheus exposition in the JSON envelope, carrying the
  // scan's series and its trace-ID exemplar.
  const auto metrics =
      jsonlite::parse(server.handle_request("{\"op\":\"metrics\"}"));
  ASSERT_TRUE(metrics.has_value());
  ASSERT_NE(metrics->find("metrics"), nullptr);
  const std::string exposition = metrics->find("metrics")->str();
  EXPECT_NE(exposition.find("# TYPE uchecker_scand_requests_total counter"),
            std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find("uchecker_engine_info{version=\"" +
                            std::string(core::kEngineVersion) + "\"} 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("trace_id=\"beefbeefbeefbeef\""),
            std::string::npos);
  EXPECT_NE(exposition.find("uchecker_process_uptime_seconds"),
            std::string::npos);

  // top: the scan shows up as the most expensive recent request.
  const auto top =
      jsonlite::parse(server.handle_request("{\"op\": \"top\", \"n\": 5}"));
  ASSERT_TRUE(top.has_value());
  const jsonlite::Value* requests = top->find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_TRUE(requests->is_array());
  ASSERT_GE(requests->items().size(), 1u);
  const jsonlite::Value& first = requests->items()[0];
  EXPECT_EQ(first.find("trace_id")->str(), "beefbeefbeefbeef");
  EXPECT_GT(first.find("total_ms")->number(), 0.0);
  EXPECT_EQ(first.find("top_root")->str(), "upload.php");
  service.stop();
}

}  // namespace
}  // namespace uchecker::service
