// Tests for the RIPS-style and WAP-style baseline scanners (§IV-C).
#include <gtest/gtest.h>

#include "baselines/rips.h"
#include "baselines/taint.h"
#include "baselines/wap.h"
#include "phpparse/parser.h"

namespace uchecker::baselines {
namespace {

core::Application one_file(const std::string& php) {
  core::Application app;
  app.name = "t";
  app.files.push_back(core::AppFile{"t.php", "<?php\n" + php});
  return app;
}

std::vector<TaintFinding> taint_of(const std::string& php) {
  SourceManager sm;
  DiagnosticSink diags;
  const FileId id = sm.add_file("t.php", "<?php\n" + php);
  static std::vector<Arena>* keep_arenas = new std::vector<Arena>();
  static std::vector<phpast::PhpFile>* keep = new std::vector<phpast::PhpFile>();
  keep_arenas->emplace_back();
  keep->push_back(phpparse::parse_php(*sm.file(id), diags, keep_arenas->back()));
  return taint_scan({&keep->back()});
}

// --- shared taint pass -----------------------------------------------------------

TEST(Taint, DirectFlowDetected) {
  const auto findings =
      taint_of("move_uploaded_file($_FILES['f']['tmp_name'], '/x');");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].sink_name, "move_uploaded_file");
  EXPECT_TRUE(findings[0].src_direct_tmp_name);
}

TEST(Taint, FlowThroughVariables) {
  const auto findings = taint_of(R"(
$f = $_FILES['u'];
$tmp = $f['tmp_name'];
move_uploaded_file($tmp, '/x');
)");
  EXPECT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].src_direct_tmp_name);
}

TEST(Taint, FlowThroughLibraryCall) {
  const auto findings = taint_of(R"(
$tmp = trim($_FILES['u']['tmp_name']);
move_uploaded_file($tmp, '/x');
)");
  EXPECT_EQ(findings.size(), 1u);
}

TEST(Taint, NoFlowNoFinding) {
  EXPECT_TRUE(taint_of("move_uploaded_file('/a', '/b');").empty());
  EXPECT_TRUE(taint_of("$x = $_FILES['u']['name']; echo $x;").empty());
}

TEST(Taint, DoesNotCrossFunctionParameters) {
  // Intraprocedural only — reproduces RIPS's miss on WooCommerce Custom
  // Profile Picture, where $_FILES reaches the sink via a parameter.
  const auto findings = taint_of(R"(
function save($file) {
    move_uploaded_file($file['tmp_name'], '/x');
}
save($_FILES['pic']);
)");
  EXPECT_TRUE(findings.empty());
}

TEST(Taint, FunctionScopeAnalyzedIndependently) {
  const auto findings = taint_of(R"(
function handler() {
    move_uploaded_file($_FILES['f']['tmp_name'], '/x');
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].scope, "handler");
}

TEST(Taint, LoopBodyUseBeforeDefConverges) {
  const auto findings = taint_of(R"(
while ($go) {
    move_uploaded_file($tmp, '/x');
    $tmp = $_FILES['f']['tmp_name'];
}
)");
  EXPECT_EQ(findings.size(), 1u);  // second pass sees the taint
}

TEST(Taint, FeatureDirectNameScopeLevel) {
  const auto findings = taint_of(R"(
$target = '/u/' . $_FILES['f']['name'];
move_uploaded_file($_FILES['f']['tmp_name'], $target);
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].dst_direct_files_name);
}

TEST(Taint, FeatureSanitizerPresence) {
  const auto findings = taint_of(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
move_uploaded_file($_FILES['f']['tmp_name'], '/u/x.' . $ext);
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].scope_has_sanitizer);
}

TEST(Taint, FilePutContentsReversedArgs) {
  const auto findings =
      taint_of("file_put_contents('/w/x.php', $_FILES['f']['tmp_name']);");
  ASSERT_EQ(findings.size(), 1u);
}

// --- RIPS ---------------------------------------------------------------------------

TEST(Rips, FlagsValidatedUploadToo) {
  // The defining false-positive behaviour: extension checks do not help.
  RipsScanner rips;
  EXPECT_TRUE(rips.scan(one_file(R"(
$ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
if (in_array($ext, array('jpg'))) {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/safe.jpg');
}
)")).flagged);
}

TEST(Rips, DoesNotFlagWpHandleUpload) {
  RipsScanner rips;
  EXPECT_FALSE(rips.scan(one_file(R"(
$res = wp_handle_upload($_FILES['f'], array('test_form' => false));
echo $res['url'];
)")).flagged);
}

TEST(Rips, ReportsPerSinkFindings) {
  RipsScanner rips;
  const BaselineReport report = rips.scan(one_file(R"(
move_uploaded_file($_FILES['a']['tmp_name'], '/x');
move_uploaded_file($_FILES['b']['tmp_name'], '/y');
)"));
  EXPECT_EQ(report.findings.size(), 2u);
}

// --- WAP ----------------------------------------------------------------------------

TEST(Wap, ClassifierTrainsToSeparateEmbeddedSet) {
  WapClassifier classifier;
  EXPECT_GE(classifier.training_accuracy(), 0.9);
}

TEST(Wap, ClassifierWeightsAreDeterministic) {
  WapClassifier a;
  WapClassifier b;
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(Wap, FlagsBluntDirectNameFlow) {
  WapScanner wap;
  EXPECT_TRUE(wap.scan(one_file(R"(
$target = '/u/' . $_FILES['f']['name'];
move_uploaded_file($_FILES['f']['tmp_name'], $target);
)")).flagged);
}

TEST(Wap, SuppressesWhenSanitizerPresent) {
  WapScanner wap;
  EXPECT_FALSE(wap.scan(one_file(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if (in_array($ext, array('jpg'))) {
    $target = '/u/' . $_FILES['f']['name'];
    move_uploaded_file($_FILES['f']['tmp_name'], $target);
}
)")).flagged);
}

TEST(Wap, MissesIndirectFlow) {
  // The mechanism behind WAP's low detection rate (4/16 in the paper).
  WapScanner wap;
  EXPECT_FALSE(wap.scan(one_file(R"(
$file = $_FILES['u'];
$name = $file['name'];
move_uploaded_file($file['tmp_name'], '/u/' . $name);
)")).flagged);
}

TEST(Wap, FeatureExtraction) {
  TaintFinding f;
  f.dst_direct_files_name = true;
  f.scope_has_sanitizer = false;
  f.src_direct_tmp_name = true;
  f.dst_has_concat = true;
  f.scope_statements = 50;
  const WapFeatures x = wap_features(f);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
  EXPECT_DOUBLE_EQ(x[4], 0.5);
}

}  // namespace
}  // namespace uchecker::baselines
