#include <gtest/gtest.h>
#include "core/detector/detector.h"

using namespace uchecker;
using namespace uchecker::core;

TEST(DetectorSmoke, Listing4Vulnerable) {
  Application app;
  app.name = "listing4";
  app.files.push_back({"upload.php", R"php(<?php
$path_array = wp_upload_dir();
$pathAndName = $path_array['path'] . "/" . $_FILES['upload_file']['name'];
if (strlen($_FILES['upload_file']['name']) > 5) {
  move_uploaded_file($_FILES['upload_file']['tmp_name'], $pathAndName);
}
)php"});
  Detector detector;
  ScanReport report = detector.scan(app);
  printf("verdict=%s paths=%zu objects=%zu analyzed=%.1f%% findings=%zu\n",
         std::string(verdict_name(report.verdict)).c_str(), report.paths,
         report.objects, report.analyzed_percent, report.findings.size());
  for (auto& f : report.findings) {
    printf("finding: %s at %s\n  dst=%s\n  reach=%s\n  witness=%s\n",
           f.sink_name.c_str(), f.location.c_str(), f.dst_sexpr.c_str(),
           f.reach_sexpr.c_str(), f.witness.c_str());
  }
  EXPECT_EQ(report.verdict, Verdict::kVulnerable);
}

TEST(DetectorSmoke, WhitelistedExtensionNotVulnerable) {
  Application app;
  app.name = "benign";
  app.files.push_back({"upload.php", R"php(<?php
$name = $_FILES['pic']['name'];
$ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
$allowed = array('jpg', 'jpeg', 'png', 'gif');
if (in_array($ext, $allowed)) {
  $dst = wp_upload_dir() . '/' . basename($name);
  move_uploaded_file($_FILES['pic']['tmp_name'], $dst);
}
)php"});
  Detector detector;
  ScanReport report = detector.scan(app);
  printf("verdict=%s findings=%zu sinks=%zu\n",
         std::string(verdict_name(report.verdict)).c_str(),
         report.findings.size(), report.sink_hits);
  EXPECT_EQ(report.verdict, Verdict::kNotVulnerable);
}
