// Tests for the vulnerability model (paper §III-C): constraint-1 taint,
// constraint-2 extension satisfiability, constraint-3 reachability, and
// the interplay between them.
#include "core/vulnmodel/vulnmodel.h"

#include <gtest/gtest.h>

#include "core/interp/interp.h"
#include "phpparse/parser.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::core {
namespace {

struct ModelRun {
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // declared before files: ASTs live here
  std::vector<phpast::PhpFile> files;
  Program program;
  InterpResult exec;
  smt::Checker checker;
  VulnModelResult result;

  explicit ModelRun(const std::string& src, VulnModelOptions options = {},
                    SolverQueryCache* query_cache = nullptr) {
    const FileId id = sources.add_file("t.php", "<?php\n" + src);
    arenas.emplace_back();
    files.push_back(phpparse::parse_php(*sources.file(id), diags, arenas.back()));
    std::vector<const phpast::PhpFile*> ptrs{&files[0]};
    program = build_program(ptrs);
    Interpreter interp(program, diags);
    AnalysisRoot root;
    root.file = &files[0];
    exec = interp.run(root);
    result = check_sinks(exec, checker, options, query_cache);
  }
};

TEST(VulnModel, UncheckedUploadIsVulnerable) {
  ModelRun r("move_uploaded_file($_FILES['f']['tmp_name'], "
             "'/www/' . $_FILES['f']['name']);");
  EXPECT_TRUE(r.result.vulnerable);
  ASSERT_FALSE(r.result.verdicts.empty());
  EXPECT_TRUE(r.result.verdicts[0].taint_ok);
  EXPECT_EQ(r.result.verdicts[0].constraints, smt::SatResult::kSat);
  EXPECT_FALSE(r.result.verdicts[0].witness.empty());
}

TEST(VulnModel, Constraint1FailsWithoutFilesTaint) {
  // Local file copy: the source is not $_FILES data.
  ModelRun r("move_uploaded_file('/tmp/staging.bin', '/www/install.php');");
  EXPECT_FALSE(r.result.vulnerable);
  ASSERT_FALSE(r.result.verdicts.empty());
  EXPECT_FALSE(r.result.verdicts[0].taint_ok);
}

TEST(VulnModel, Constraint2FixedExtensionUnsat) {
  ModelRun r("move_uploaded_file($_FILES['f']['tmp_name'], "
             "'/www/img_' . md5($_FILES['f']['name']) . '.png');");
  EXPECT_FALSE(r.result.vulnerable);
  ASSERT_FALSE(r.result.verdicts.empty());
  EXPECT_TRUE(r.result.verdicts[0].taint_ok);
  EXPECT_EQ(r.result.verdicts[0].constraints, smt::SatResult::kUnsat);
}

TEST(VulnModel, Constraint3BlocksWhitelistedPath) {
  ModelRun r(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext == 'jpg') {
    move_uploaded_file($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);
}
)");
  EXPECT_FALSE(r.result.vulnerable);
}

TEST(VulnModel, BlacklistOfAllExecutableExtsIsSafe) {
  // Requires the ext-has-no-dot axiom: otherwise s_ext = "x.php" would
  // slip past "$ext != 'php'".
  ModelRun r(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext != 'php' && $ext != 'php5' && $ext != 'phtml') {
    move_uploaded_file($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);
}
)");
  EXPECT_FALSE(r.result.vulnerable);
}

TEST(VulnModel, IncompleteBlacklistStillVulnerable) {
  // Blocking only 'php' leaves 'php5' (and 'phtml') exploitable.
  ModelRun r(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext != 'php') {
    move_uploaded_file($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);
}
)");
  EXPECT_TRUE(r.result.vulnerable);
}

TEST(VulnModel, DoubleExtensionRenameVulnerable) {
  // The WP Demo Buddy pattern: ".php" appended after a ".zip" check.
  ModelRun r(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext == 'zip') {
    $target = '/demos/' . time() . '_' . $_FILES['f']['name'] . '.php';
    move_uploaded_file($_FILES['f']['tmp_name'], $target);
}
)");
  EXPECT_TRUE(r.result.vulnerable);
}

TEST(VulnModel, ExtensionListConfigurable) {
  VulnModelOptions only_asa;
  only_asa.executable_extensions = {"asa"};
  ModelRun r("move_uploaded_file($_FILES['f']['tmp_name'], "
             "'/www/fixed.php');",
             only_asa);
  // dst ends ".php", but the configured executable extension is ".asa".
  EXPECT_FALSE(r.result.vulnerable);
}

TEST(VulnModel, StopAtFirstFindingLimitsChecks) {
  VulnModelOptions all;
  all.stop_at_first_finding = false;
  ModelRun stop_run(R"(
if ($a) { $d = '/x/'; } else { $d = '/y/'; }
move_uploaded_file($_FILES['f']['tmp_name'], $d . $_FILES['f']['name']);
)");
  ModelRun full_run(R"(
if ($a) { $d = '/x/'; } else { $d = '/y/'; }
move_uploaded_file($_FILES['f']['tmp_name'], $d . $_FILES['f']['name']);
)",
                    all);
  EXPECT_TRUE(stop_run.result.vulnerable);
  EXPECT_TRUE(full_run.result.vulnerable);
  EXPECT_LT(stop_run.result.verdicts.size(), full_run.result.verdicts.size());
}

TEST(VulnModel, MemoizationDeduplicatesIdenticalQueries) {
  // Two sinks on the same path share (dst, reach) after the if joins.
  VulnModelOptions all;
  all.stop_at_first_finding = false;
  ModelRun r(R"(
$d = '/www/img.png';
move_uploaded_file($_FILES['f']['tmp_name'], $d);
move_uploaded_file($_FILES['f']['tmp_name'], $d);
)",
             all);
  EXPECT_EQ(r.result.verdicts.size(), 2u);
  EXPECT_EQ(r.result.solver_calls, 1u);  // second hit memoized
}

TEST(VulnModel, MemoHitReplaysWitness) {
  // Regression: the per-call (dst, reach) memo used to cache only the
  // SatResult, so the duplicate sink lost its witness text.
  VulnModelOptions all;
  all.stop_at_first_finding = false;
  ModelRun r(R"(
$d = '/www/' . $_FILES['f']['name'];
move_uploaded_file($_FILES['f']['tmp_name'], $d);
move_uploaded_file($_FILES['f']['tmp_name'], $d);
)",
             all);
  ASSERT_EQ(r.result.verdicts.size(), 2u);
  EXPECT_EQ(r.result.solver_calls, 1u);
  EXPECT_FALSE(r.result.verdicts[0].witness.empty());
  EXPECT_EQ(r.result.verdicts[0].witness, r.result.verdicts[1].witness);
}

TEST(VulnModel, QueryCacheHitReplaysWitnessAndEvidence) {
  // Two independent check_sinks runs over the same source, sharing one
  // SolverQueryCache: the second run must answer from the cache and
  // still deliver the full evidence bundle — identical witness text,
  // identical decoded attack, taint path and guards recomputed against
  // its own (structurally identical) graph.
  const std::string src = R"(
if (strlen($_FILES['f']['name']) > 3) {
    move_uploaded_file($_FILES['f']['tmp_name'], '/up/' . $_FILES['f']['name']);
}
)";
  VulnModelOptions options;
  options.collect_evidence = true;
  SolverQueryCache cache;
  ModelRun first(src, options, &cache);
  ModelRun second(src, options, &cache);

  ASSERT_TRUE(first.result.vulnerable);
  ASSERT_TRUE(second.result.vulnerable);
  EXPECT_EQ(first.result.query_cache_hits, 0u);
  EXPECT_GT(second.result.query_cache_hits, 0u);
  EXPECT_EQ(second.result.solver_calls, 0u);

  const SinkVerdict& a = first.result.verdicts[0];
  const SinkVerdict& b = second.result.verdicts[0];
  EXPECT_FALSE(b.witness.empty());
  EXPECT_EQ(a.witness, b.witness);
  // The replayed evidence bundle matches the fresh solve's exactly.
  ASSERT_EQ(a.taint_path.size(), b.taint_path.size());
  for (std::size_t i = 0; i < a.taint_path.size(); ++i) {
    EXPECT_EQ(a.taint_path[i].description, b.taint_path[i].description);
    EXPECT_EQ(a.taint_path[i].loc.line, b.taint_path[i].loc.line);
  }
  ASSERT_EQ(a.guards.size(), b.guards.size());
  for (std::size_t i = 0; i < a.guards.size(); ++i) {
    EXPECT_EQ(a.guards[i].sexpr, b.guards[i].sexpr);
  }
  EXPECT_TRUE(b.attack.has_model);
  EXPECT_EQ(a.attack.upload_filename, b.attack.upload_filename);
  EXPECT_EQ(a.attack.destination, b.attack.destination);
  ASSERT_EQ(a.attack.bindings.size(), b.attack.bindings.size());
  for (std::size_t i = 0; i < a.attack.bindings.size(); ++i) {
    EXPECT_EQ(a.attack.bindings[i].symbol, b.attack.bindings[i].symbol);
    EXPECT_EQ(a.attack.bindings[i].decoded, b.attack.bindings[i].decoded);
  }
}

TEST(VulnModel, SExpressionsMatchPaperNotation) {
  ModelRun r(R"(
$path_array = wp_upload_dir();
$pathAndName = $path_array['path'] . "/" . $_FILES['upload_file']['name'];
if (strlen($_FILES['upload_file']['name']) > 5) {
    move_uploaded_file($_FILES['upload_file']['tmp_name'], $pathAndName);
}
)");
  ASSERT_TRUE(r.result.vulnerable);
  const SinkVerdict& v = r.result.verdicts[0];
  // se_dst = (. s_path (. "/" (. s_name s_ext))) modulo assoc order.
  EXPECT_NE(v.dst_sexpr.find("s_files_upload_file_filename"), std::string::npos);
  EXPECT_NE(v.dst_sexpr.find("s_files_upload_file_ext"), std::string::npos);
  EXPECT_NE(v.reach_sexpr.find("(> (strlen"), std::string::npos);
  // The witness assigns the extension symbol something ending in php.
  EXPECT_NE(v.witness.find("s_files_upload_file_ext"), std::string::npos);
}

TEST(VulnModel, FilePutContentsAlsoModeled) {
  ModelRun r("file_put_contents('/www/shell' . $_FILES['f']['name'], "
             "$_FILES['f']['tmp_name']);");
  EXPECT_TRUE(r.result.vulnerable);
}

TEST(VulnModel, UnreachedSinkReportsNothing) {
  ModelRun r("if (false) { } $x = $_FILES['f']['name'];");
  EXPECT_TRUE(r.result.verdicts.empty());
  EXPECT_FALSE(r.result.vulnerable);
}

TEST(VulnModel, SizeCheckDoesNotBlockDetection) {
  ModelRun r(R"(
if ($_FILES['f']['size'] < 1048576) {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
}
)");
  EXPECT_TRUE(r.result.vulnerable);
}

TEST(VulnModel, ContradictoryReachabilityUnsat) {
  ModelRun r(R"(
$mode = 'locked';
if ($mode == 'open') {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
}
)");
  EXPECT_FALSE(r.result.vulnerable);
}

}  // namespace
}  // namespace uchecker::core
