// End-to-end detector tests over realistic upload idioms — the
// full pipeline of paper Fig. 2 on single applications.
#include "core/detector/detector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/detector/report_io.h"

namespace uchecker::core {
namespace {

ScanReport scan(const std::string& handler_php, ScanOptions options = {}) {
  Application app;
  app.name = "test-app";
  app.files.push_back(AppFile{"handler.php", "<?php\n" + handler_php});
  return Detector(options).scan(app);
}

bool vulnerable(const std::string& php, ScanOptions options = {}) {
  return scan(php, options).verdict == Verdict::kVulnerable;
}

// --- vulnerable idioms ----------------------------------------------------------

TEST(Detector, DirectNameIntoDestination) {
  EXPECT_TRUE(vulnerable(
      "move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
      "$_FILES['f']['name']);"));
}

TEST(Detector, NameThroughVariables) {
  EXPECT_TRUE(vulnerable(R"(
$file = $_FILES['upload'];
$name = $file['name'];
$dir = wp_upload_dir();
$dest = $dir['path'] . '/' . $name;
move_uploaded_file($file['tmp_name'], $dest);
)"));
}

TEST(Detector, NameThroughBasename) {
  EXPECT_TRUE(vulnerable(R"(
$dest = '/u/' . basename($_FILES['f']['name']);
move_uploaded_file($_FILES['f']['tmp_name'], $dest);
)"));
}

TEST(Detector, NameThroughUserFunction) {
  EXPECT_TRUE(vulnerable(R"(
function build_path($n) { return '/u/' . $n; }
move_uploaded_file($_FILES['f']['tmp_name'], build_path($_FILES['f']['name']));
)"));
}

TEST(Detector, TypeCheckAloneInsufficient) {
  // MIME type is client-controlled and unrelated to the extension.
  EXPECT_TRUE(vulnerable(R"(
if ($_FILES['f']['type'] == 'image/jpeg') {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
}
)"));
}

TEST(Detector, CaseCheckViaStrtolowerStillVulnerableWithoutWhitelist) {
  EXPECT_TRUE(vulnerable(R"(
$name = strtolower($_FILES['f']['name']);
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $name);
)"));
}

TEST(Detector, InterpolatedStringDestination) {
  EXPECT_TRUE(vulnerable(R"(
$n = $_FILES['f']['name'];
$dest = "/uploads/$n";
move_uploaded_file($_FILES['f']['tmp_name'], $dest);
)"));
}

TEST(Detector, SprintfDestination) {
  EXPECT_TRUE(vulnerable(R"(
$dest = sprintf('%s/%s', '/uploads', $_FILES['f']['name']);
move_uploaded_file($_FILES['f']['tmp_name'], $dest);
)"));
}

TEST(Detector, ExplodeEndWhitelistBypassedByAppendedPhp) {
  EXPECT_TRUE(vulnerable(R"(
$parts = explode('.', $_FILES['f']['name']);
$ext = end($parts);
if ($ext == 'zip') {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/x_' . $_FILES['f']['name'] . '.php');
}
)"));
}

// --- safe idioms ------------------------------------------------------------------

TEST(Detector, WhitelistInArray) {
  EXPECT_FALSE(vulnerable(R"(
$ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
if (in_array($ext, array('jpg', 'png'))) {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
}
)"));
}

TEST(Detector, WhitelistEqualityChain) {
  EXPECT_FALSE(vulnerable(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext == 'jpg' || $ext == 'png' || $ext == 'gif') {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
}
)"));
}

TEST(Detector, WhitelistViaSwitch) {
  EXPECT_FALSE(vulnerable(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
switch ($ext) {
    case 'jpg':
    case 'png':
        move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
        break;
}
)"));
}

TEST(Detector, GuardWithWpDie) {
  EXPECT_FALSE(vulnerable(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if (!in_array($ext, array('pdf', 'txt'))) {
    wp_die('rejected');
}
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
)"));
}

TEST(Detector, GuardWithExit) {
  EXPECT_FALSE(vulnerable(R"(
$ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
if ($ext != 'csv') {
    exit;
}
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
)"));
}

TEST(Detector, GuardWithReturnInFunction) {
  EXPECT_FALSE(vulnerable(R"(
function handle() {
    $ext = pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION);
    if ($ext !== 'txt') return;
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
}
handle();
)"));
}

TEST(Detector, DerivedDestinationName) {
  EXPECT_FALSE(vulnerable(R"(
$dest = '/u/' . md5($_FILES['f']['name']) . '.jpg';
move_uploaded_file($_FILES['f']['tmp_name'], $dest);
)"));
}

TEST(Detector, WhitelistedExtReattached) {
  EXPECT_FALSE(vulnerable(R"(
$ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
if (in_array($ext, array('png', 'gif'))) {
    $dest = '/u/' . uniqid() . '.' . $ext;
    move_uploaded_file($_FILES['f']['tmp_name'], $dest);
}
)"));
}

TEST(Detector, SubstrSuffixCheck) {
  EXPECT_FALSE(vulnerable(R"(
$name = strtolower($_FILES['f']['name']);
if (substr($name, -4) == '.png') {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $name);
}
)"));
}

TEST(Detector, NoFilesAccessMeansNoRoot) {
  const ScanReport report = scan("move_uploaded_file('/a', '/b');");
  EXPECT_EQ(report.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(report.roots, 0u);
}

TEST(Detector, NoSinkMeansNoRoot) {
  const ScanReport report = scan("$x = $_FILES['f']['name']; echo $x;");
  EXPECT_EQ(report.verdict, Verdict::kNotVulnerable);
  EXPECT_EQ(report.roots, 0u);
}


// --- class-based plugins (WordPress OO idiom) -----------------------------------

TEST(Detector, MethodHandlerViaArrayCallback) {
  EXPECT_TRUE(vulnerable(R"(
class My_Uploader {
    public function __construct() {
        add_action('wp_ajax_up', array($this, 'handle'));
    }
    public function handle() {
        $updir = wp_upload_dir();
        $dest = $updir['basedir'] . '/' . $_FILES['f']['name'];
        move_uploaded_file($_FILES['f']['tmp_name'], $dest);
    }
}
$uploader = new My_Uploader();
)"));
}

TEST(Detector, MethodHandlerWithValidationIsSafe) {
  EXPECT_FALSE(vulnerable(R"(
class Safe_Uploader {
    public function handle() {
        $ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
        if (!in_array($ext, array('png', 'jpg'))) {
            wp_die('rejected');
        }
        move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
    }
}
add_action('wp_ajax_up', array('Safe_Uploader', 'handle'));
)"));
}

TEST(Detector, DynamicFieldNameStillModeled) {
  // $_FILES[$type] with a symbolic index uses the shared "any" entry.
  EXPECT_TRUE(vulnerable(R"(
$type = $_POST['which'];
move_uploaded_file($_FILES[$type]['tmp_name'], '/u/' . $_FILES[$type]['name']);
)"));
}

TEST(Detector, ConcatViaCompoundAssignment) {
  EXPECT_TRUE(vulnerable(R"(
$dest = '/uploads/';
$dest .= $_FILES['f']['name'];
move_uploaded_file($_FILES['f']['tmp_name'], $dest);
)"));
}

TEST(Detector, HeredocDestination) {
  EXPECT_TRUE(vulnerable(R"(
$n = $_FILES['f']['name'];
$dest = <<<EOT
/var/www/uploads/$n
EOT;
move_uploaded_file($_FILES['f']['tmp_name'], $dest);
)"));
}

TEST(Detector, TernaryDestinationEitherBranchExploitable) {
  EXPECT_TRUE(vulnerable(R"(
$n = $_FILES['f']['name'];
$dest = isset($_POST['alt']) ? '/alt/' . $n : '/main/' . $n;
move_uploaded_file($_FILES['f']['tmp_name'], $dest);
)"));
}

TEST(Detector, ElvisDefaultDirectory) {
  EXPECT_TRUE(vulnerable(R"(
$dir = get_option('updir') ?: '/fallback/';
move_uploaded_file($_FILES['f']['tmp_name'], $dir . $_FILES['f']['name']);
)"));
}

TEST(Detector, StrReplaceSanitizerDoesNotStripDotPhp) {
  // str_replace('..', '', $name) defeats traversal, not extension abuse.
  EXPECT_TRUE(vulnerable(R"(
$name = str_replace('..', '', $_FILES['f']['name']);
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $name);
)"));
}

TEST(Detector, SizeAndErrorChecksOnlyStillVulnerable) {
  EXPECT_TRUE(vulnerable(R"(
$f = $_FILES['doc'];
if ($f['error'] != 0) { wp_die('failed'); }
if ($f['size'] > 10485760) { wp_die('too big'); }
move_uploaded_file($f['tmp_name'], '/u/' . $f['name']);
)"));
}

TEST(Detector, ForeachOverFilesArrayVulnerable) {
  EXPECT_TRUE(vulnerable(R"(
foreach ($_FILES as $field => $file) {
    move_uploaded_file($file['tmp_name'], '/u/' . $file['name']);
}
)"));
}

// --- report contents ----------------------------------------------------------------

TEST(Detector, FindingHasSourceLocationAndLine) {
  const ScanReport report = scan(R"(
$file = $_FILES['doc'];
move_uploaded_file($file['tmp_name'], '/www/' . $file['name']);
)");
  ASSERT_EQ(report.verdict, Verdict::kVulnerable);
  ASSERT_FALSE(report.findings.empty());
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.sink_name, "move_uploaded_file");
  EXPECT_NE(f.location.find("handler.php:4"), std::string::npos);
  EXPECT_NE(f.source_line.find("move_uploaded_file"), std::string::npos);
  EXPECT_FALSE(f.witness.empty());
}

TEST(Detector, ReportStatisticsPopulated) {
  const ScanReport report = scan(R"(
if ($a) { $x = 1; }
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
)");
  EXPECT_GT(report.total_loc, 0u);
  EXPECT_GT(report.analyzed_loc, 0u);
  EXPECT_GT(report.paths, 1u);
  EXPECT_GT(report.objects, 0u);
  EXPECT_GT(report.objects_per_path, 0.0);
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_EQ(report.parse_errors, 0u);
  EXPECT_GE(report.solver_calls, 1u);
}

TEST(Detector, BudgetExhaustionYieldsIncomplete) {
  ScanOptions tight;
  tight.budget.max_paths = 4;
  std::string php;
  for (int i = 0; i < 8; ++i) {
    php += "if ($c" + std::to_string(i) + ") { $x = 1; }\n";
  }
  php += "move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
         "$_FILES['f']['name']);\n";
  const ScanReport report = scan(php, tight);
  EXPECT_EQ(report.verdict, Verdict::kAnalysisIncomplete);
  EXPECT_TRUE(report.budget_exhausted);
}

TEST(Detector, MultiFileAppWithIncludes) {
  Application app;
  app.name = "multi";
  app.files.push_back(AppFile{"plugin.php", R"php(<?php
require_once 'inc/upload.php';
add_action('wp_ajax_up', 'do_upload');
)php"});
  app.files.push_back(AppFile{"inc/upload.php", R"php(<?php
function do_upload() {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
}
)php"});
  const ScanReport report = Detector().scan(app);
  EXPECT_EQ(report.verdict, Verdict::kVulnerable);
}

// --- zero-denominator regressions -----------------------------------------
// Stats ratios must stay finite (0.0, not NaN/inf) when an app produces
// zero LoC or zero execution paths; a NaN here would also poison the
// JSON report with a bare "nan" token.

TEST(Detector, ZeroLocAppHasFiniteStats) {
  Application app;
  app.name = "empty";
  app.files.push_back(AppFile{"empty.php", ""});
  app.files.push_back(AppFile{"blank.php", "\n\n\n"});
  const ScanReport report = Detector().scan(app);
  EXPECT_EQ(report.total_loc, 0u);
  EXPECT_EQ(report.paths, 0u);
  EXPECT_DOUBLE_EQ(report.analyzed_percent, 0.0);
  EXPECT_DOUBLE_EQ(report.objects_per_path, 0.0);
  EXPECT_TRUE(std::isfinite(report.analyzed_percent));
  EXPECT_TRUE(std::isfinite(report.objects_per_path));
}

TEST(Detector, ZeroPathsReportSerializesWithoutNan) {
  Application app;
  app.name = "no-roots";
  // No $_FILES access and no sink: locality finds zero roots, so zero
  // paths and zero analyzed LoC flow into the ratio denominators.
  app.files.push_back(AppFile{"lib.php", "<?php\n$x = 1;\necho $x;\n"});
  const ScanReport report = Detector().scan(app);
  EXPECT_EQ(report.paths, 0u);
  EXPECT_DOUBLE_EQ(report.objects_per_path, 0.0);
  const std::string json = to_json(report);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Detector, ParseErrorsSurvivable) {
  Application app;
  app.name = "broken";
  app.files.push_back(AppFile{"bad.php", "<?php $a = ;;;"});
  app.files.push_back(AppFile{"good.php", R"php(<?php
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
)php"});
  const ScanReport report = Detector().scan(app);
  EXPECT_GT(report.parse_errors, 0u);
  EXPECT_EQ(report.verdict, Verdict::kVulnerable);
}

}  // namespace
}  // namespace uchecker::core
