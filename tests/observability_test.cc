// Tests for the observability layer: structured JSON-lines logging,
// the per-worker flight recorder, the Prometheus text exposition, and
// the concurrency contracts that back live export (trace snapshots and
// metrics reads racing a running scan — run under TSan by
// ci/sanitize.sh --tsan).
//
// The histogram tests double as the regression suite for the bucket
// boundary bug: the JSON export and the Prometheus exposition must
// agree on boundary-exact samples, and the final bucket (+Inf / "inf")
// must always equal the total count on both surfaces.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/scan_service.h"
#include "support/flight_recorder.h"
#include "support/jsonlite.h"
#include "support/logging.h"
#include "support/prom_export.h"
#include "support/telemetry.h"
#include "support/trace_export.h"

namespace uchecker {
namespace {

// ---------------------------------------------------------------------------
// Logging

class CaptureLog {
 public:
  explicit CaptureLog(logging::Logger& logger) {
    logger.set_sink([this](const std::string& line) { lines_.push_back(line); });
  }
  [[nodiscard]] const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(LoggingTest, EveryLineIsOneValidJsonObject) {
  logging::Logger logger;
  CaptureLog capture(logger);
  logger.info("request_done", "a1b2c3d4e5f60718",
              {{"app", "webapp"},
               {"total_ms", 46.25},
               {"cached", false},
               {"solver_calls", std::uint64_t{3}}});
  logger.warn("watchdog_cancel", {}, {{"quote\"key", "va\"lue\n"}});

  ASSERT_EQ(capture.lines().size(), 2u);
  for (const std::string& line : capture.lines()) {
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    const auto parsed = jsonlite::parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    ASSERT_TRUE(parsed->is_object()) << line;
    ASSERT_NE(parsed->find("ts"), nullptr);
    ASSERT_NE(parsed->find("level"), nullptr);
    ASSERT_NE(parsed->find("event"), nullptr);
    // ts leads the line so `sort` on raw log files is chronological.
    EXPECT_EQ(line.rfind("{\"ts\": ", 0), 0u) << line;
  }

  const auto first = jsonlite::parse(capture.lines()[0]);
  EXPECT_EQ(first->find("level")->str(), "info");
  EXPECT_EQ(first->find("event")->str(), "request_done");
  EXPECT_EQ(first->find("trace_id")->str(), "a1b2c3d4e5f60718");
  EXPECT_EQ(first->find("app")->str(), "webapp");
  EXPECT_DOUBLE_EQ(first->find("total_ms")->number(), 46.25);
  EXPECT_FALSE(first->find("cached")->boolean());
  EXPECT_DOUBLE_EQ(first->find("solver_calls")->number(), 3.0);

  // No trace ID -> the key is omitted, not emitted empty.
  const auto second = jsonlite::parse(capture.lines()[1]);
  EXPECT_EQ(second->find("trace_id"), nullptr);
  EXPECT_EQ(second->find("quote\"key")->str(), "va\"lue\n");
}

TEST(LoggingTest, MinLevelFiltersCheaply) {
  logging::Logger logger;
  CaptureLog capture(logger);
  logger.debug("noisy");  // below default kInfo
  EXPECT_TRUE(capture.lines().empty());
  EXPECT_EQ(logger.emitted(), 0u);

  logger.set_min_level(logging::Level::kDebug);
  logger.debug("noisy");
  EXPECT_EQ(capture.lines().size(), 1u);

  logger.set_min_level(logging::Level::kError);
  logger.warn("ignored");
  logger.error("kept");
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[1].find("\"kept\""), std::string::npos);
}

TEST(LoggingTest, RateLimitSuppressesAndReports) {
  logging::LoggerOptions options;
  options.rate_limit_per_sec = 3;
  logging::Logger logger(options);
  CaptureLog capture(logger);
  for (int i = 0; i < 10; ++i) logger.info("hot_event");
  // 3 emitted in this window, 7 suppressed (reported on a later emit).
  EXPECT_EQ(capture.lines().size(), 3u);
  EXPECT_EQ(logger.emitted(), 3u);
  EXPECT_EQ(logger.suppressed(), 7u);
  // A different event key is not throttled by hot_event's budget.
  logger.info("other_event");
  EXPECT_EQ(capture.lines().size(), 4u);
}

TEST(LoggingTest, ParseLevelRoundTrips) {
  for (const logging::Level level :
       {logging::Level::kDebug, logging::Level::kInfo, logging::Level::kWarn,
        logging::Level::kError}) {
    logging::Level parsed = logging::Level::kInfo;
    ASSERT_TRUE(logging::parse_level(logging::level_name(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  logging::Level ignored = logging::Level::kInfo;
  EXPECT_FALSE(logging::parse_level("loud", &ignored));
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorderTest, RecordsInOrderAndOverwritesOldest) {
  telemetry::FlightRecorder rec(16);
  EXPECT_EQ(rec.capacity(), 16u);
  for (int i = 0; i < 40; ++i) {
    rec.record(telemetry::FlightKind::kEvent, "e" + std::to_string(i),
               static_cast<std::uint64_t>(i));
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 16u);
  // The newest 16 survive, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 24 + i);
    EXPECT_EQ(events[i].detail, "e" + std::to_string(24 + i));
    if (i > 0) {
      EXPECT_LT(events[i - 1].index, events[i].index);
    }
  }
  EXPECT_EQ(rec.total_recorded(), 40u);

  const auto parsed = jsonlite::parse(rec.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->find("total_recorded")->number(), 40.0);
  EXPECT_DOUBLE_EQ(parsed->find("dropped")->number(), 24.0);
}

TEST(FlightRecorderTest, TruncatesLongDetail) {
  telemetry::FlightRecorder rec(16);
  const std::string long_detail(200, 'x');
  rec.record(telemetry::FlightKind::kEvent, long_detail);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail,
            std::string(telemetry::FlightRecorder::kDetailBytes, 'x'));
}

TEST(FlightRecorderTest, NamesWedgedPhaseAndLastProgress) {
  telemetry::FlightRecorder rec(64);
  rec.record(telemetry::FlightKind::kPhaseBegin, "scan");
  rec.record(telemetry::FlightKind::kPhaseBegin, "parse");
  rec.record(telemetry::FlightKind::kPhaseEnd, "parse");
  rec.record(telemetry::FlightKind::kPhaseBegin, "interp");
  rec.record(telemetry::FlightKind::kProgress, "", 7, 123);
  rec.record(telemetry::FlightKind::kProgress, "", 9, 456);
  EXPECT_EQ(rec.wedged_phase(), "interp");

  const auto parsed = jsonlite::parse(rec.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("wedged_phase")->str(), "interp");
  const jsonlite::Value* progress = parsed->find("last_progress");
  ASSERT_NE(progress, nullptr);
  EXPECT_DOUBLE_EQ(progress->find("live_paths")->number(), 9.0);
  EXPECT_DOUBLE_EQ(progress->find("objects")->number(), 456.0);

  // Closing everything clears the wedge.
  rec.record(telemetry::FlightKind::kPhaseEnd, "interp");
  rec.record(telemetry::FlightKind::kPhaseEnd, "scan");
  EXPECT_EQ(rec.wedged_phase(), "");
  const auto done = jsonlite::parse(rec.to_json());
  EXPECT_TRUE(done->find("wedged_phase")->is_null());
}

// The snapshot path must tolerate a racing writer (the watchdog dumps a
// recorder while the wedged scan keeps writing to it). TSan-checked.
TEST(FlightRecorderTest, SnapshotRacesWriterSafely) {
  telemetry::FlightRecorder rec(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      rec.record(telemetry::FlightKind::kProgress, "progress-detail", i, i * 2);
      ++i;
    }
  });
  for (int i = 0; i < 200; ++i) {
    const auto events = rec.snapshot();
    // Every surviving event is internally consistent (b == 2a, detail
    // intact): torn copies must have been discarded.
    for (const auto& ev : events) {
      EXPECT_EQ(ev.b, ev.a * 2);
      EXPECT_EQ(ev.detail, "progress-detail");
    }
    const auto parsed = jsonlite::parse(rec.to_json());
    EXPECT_TRUE(parsed.has_value());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// ---------------------------------------------------------------------------
// Histogram boundary consistency (regression) + Prometheus exposition

TEST(PromExportTest, BoundaryExactSamplesAgreeAcrossSurfaces) {
  telemetry::Telemetry telemetry;
  telemetry::Histogram& h =
      telemetry.metrics().histogram("scan.ms", {1.0, 2.0, 4.0});
  // Boundary-exact samples: le convention puts each in its own bucket.
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  h.observe(8.0);  // overflow

  // Raw per-bucket counts stay non-cumulative (pinned by telemetry_test).
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
  // Cumulative counts follow the le convention; last == count().
  EXPECT_EQ(h.cumulative_counts(), (std::vector<std::uint64_t>{1, 2, 3, 4}));

  // JSON export: buckets are the cumulative counts and "inf" == count.
  const auto metrics = jsonlite::parse(telemetry::metrics_to_json(telemetry));
  ASSERT_TRUE(metrics.has_value());
  const jsonlite::Value* hist = metrics->find("histograms")->find("scan.ms");
  ASSERT_NE(hist, nullptr);
  const jsonlite::Value* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->items().size(), 4u);
  const std::vector<double> expect_counts{1, 2, 3, 4};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(buckets->items()[i].find("count")->number(),
                     expect_counts[i])
        << i;
  }
  EXPECT_EQ(buckets->items()[3].find("le")->str(), "inf");
  EXPECT_DOUBLE_EQ(buckets->items()[3].find("count")->number(),
                   hist->find("count")->number());

  // Prometheus exposition: same cumulative numbers, +Inf == _count.
  const std::string prom = telemetry::to_prometheus_text(telemetry);
  EXPECT_NE(prom.find("uchecker_scan_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("uchecker_scan_ms_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("uchecker_scan_ms_bucket{le=\"4\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("uchecker_scan_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("uchecker_scan_ms_count 4\n"), std::string::npos);
  EXPECT_NE(prom.find("uchecker_scan_ms_sum 15\n"), std::string::npos);
}

TEST(PromExportTest, RendersCountersGaugesAndMetadata) {
  telemetry::Telemetry telemetry;
  telemetry.metrics().counter("scand.requests").add(7);
  telemetry.metrics().gauge("scand.queue_depth").set(3.5);
  telemetry.metrics().set_exemplar("scand.requests", "feedfacecafebeef");

  telemetry::PromOptions options;
  options.engine_version = "uchecker-test";
  options.process_start =
      std::chrono::steady_clock::now() - std::chrono::seconds(5);
  const std::string prom = telemetry::to_prometheus_text(telemetry, options);

  // Counter: sanitized name + _total suffix + exemplar.
  EXPECT_NE(prom.find("# TYPE uchecker_scand_requests_total counter\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("uchecker_scand_requests_total 7 "
                      "# {trace_id=\"feedfacecafebeef\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("uchecker_scand_queue_depth 3.5\n"), std::string::npos);
  EXPECT_NE(prom.find("uchecker_engine_info{version=\"uchecker-test\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("uchecker_process_uptime_seconds"), std::string::npos);

  EXPECT_EQ(telemetry::prom_sanitize_name("scan.seconds_ms"),
            "uchecker_scan_seconds_ms");
  EXPECT_EQ(telemetry::prom_sanitize_name("weird-name: x"),
            "uchecker_weird_name__x");
}

TEST(PromExportTest, EmptyExemplarIsNeverStored) {
  telemetry::Telemetry telemetry;
  telemetry.metrics().counter("c").add(1);
  telemetry.metrics().set_exemplar("c", "");
  EXPECT_TRUE(telemetry.metrics().exemplars().empty());
  const std::string prom = telemetry::to_prometheus_text(telemetry);
  EXPECT_EQ(prom.find("trace_id"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrent trace export (TSan-checked)

// Live exporters (the scand `metrics`/`status` ops, flight dumps) read
// traces while scans are still writing them. The snapshot()-based
// export must stay valid JSON and race-free throughout.
TEST(ConcurrentExportTest, ExportWhileScanWritesStaysValidJson) {
  telemetry::Telemetry telemetry;
  // Writers do a FIXED amount of work (the exporter is O(recorded
  // spans), so an unbounded writer racing a serial exporter would grow
  // without limit on a loaded single-core machine).
  constexpr int kWriterIters = 1500;
  std::atomic<int> active_writers{2};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&telemetry, &active_writers, w] {
      telemetry::ScanTrace& trace = telemetry.begin_scan(
          "app-" + std::to_string(w), "00000000000000a" + std::to_string(w));
      for (std::uint64_t i = 0; i < kWriterIters; ++i) {
        const telemetry::SpanId span = trace.begin_span("interp", "root.php");
        trace.sample_progress(i, i * 3, i * 100);
        trace.record_solver_call(12, 1, 0, false, "sat");
        trace.record_event("budget_tick", "detail");
        trace.end_span(span);
        telemetry.metrics().counter("scan.count").add(1);
        telemetry.metrics().histogram("scan.seconds_ms", {1, 10, 100}).observe(
            static_cast<double>(i % 200));
        telemetry.metrics().set_exemplar("scan.count",
                                         "00000000000000a" + std::to_string(w));
      }
      active_writers.fetch_sub(1, std::memory_order_release);
    });
  }

  // Export concurrently while the writers are still recording, then a
  // few more times after they finish.
  int post_writer_exports = 3;
  while (post_writer_exports > 0) {
    if (active_writers.load(std::memory_order_acquire) == 0) {
      --post_writer_exports;
    }
    const std::string trace_json = telemetry::to_chrome_trace_json(telemetry);
    const auto trace_parsed = jsonlite::parse(trace_json);
    ASSERT_TRUE(trace_parsed.has_value());
    ASSERT_NE(trace_parsed->find("traceEvents"), nullptr);

    const std::string metrics_json = telemetry::metrics_to_json(telemetry);
    ASSERT_TRUE(jsonlite::parse(metrics_json).has_value());

    const std::string prom = telemetry::to_prometheus_text(telemetry);
    EXPECT_FALSE(prom.empty());
  }
  for (std::thread& w : writers) w.join();

  // After completion the trace IDs are visible in the export args.
  const std::string final_json = telemetry::to_chrome_trace_json(telemetry);
  EXPECT_NE(final_json.find("00000000000000a0"), std::string::npos);
  EXPECT_NE(final_json.find("00000000000000a1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace-ID minting

TEST(TraceIdTest, MintedIdsAreHexAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    const std::string id = service::mint_trace_id("hint");
    ASSERT_EQ(id.size(), 16u);
    for (const char c : id) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
    }
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 64u);
}

}  // namespace
}  // namespace uchecker
