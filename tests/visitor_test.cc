#include "phpast/visitor.h"

#include <gtest/gtest.h>

#include "phpast/printer.h"
#include "phpparse/parser.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::phpast {
namespace {

PhpFile parse(const std::string& src) {
  static SourceManager* sm = new SourceManager();
  static std::vector<Arena>* arenas = new std::vector<Arena>();
  DiagnosticSink diags;
  const FileId id = sm->add_file("t.php", src);
  arenas->emplace_back();
  return phpparse::parse_php(*sm->file(id), diags, arenas->back());
}

std::size_t count_nodes(const PhpFile& file) {
  std::size_t n = 0;
  for (const auto& stmt : file.statements) {
    walk(*stmt, [&n](const Node&) {
      ++n;
      return true;
    });
  }
  return n;
}

TEST(Visitor, WalkVisitsAllNodes) {
  const PhpFile file = parse("<?php $a = f($b + 1, 'x');");
  // expr-stmt, assign, var a, call, binary, var b, int 1, string.
  EXPECT_EQ(count_nodes(file), 8u);
}

TEST(Visitor, WalkPreOrder) {
  const PhpFile file = parse("<?php $a = 1 + 2;");
  std::vector<NodeKind> order;
  walk(*file.statements.at(0), [&order](const Node& n) {
    order.push_back(n.kind());
    return true;
  });
  ASSERT_GE(order.size(), 3u);
  EXPECT_EQ(order[0], NodeKind::kExprStmt);
  EXPECT_EQ(order[1], NodeKind::kAssign);
}

TEST(Visitor, WalkCanPruneSubtrees) {
  const PhpFile file = parse("<?php function f() { $inner = 1; } $outer = 2;");
  std::size_t vars = 0;
  for (const auto& stmt : file.statements) {
    walk(*stmt, [&vars](const Node& n) {
      if (n.kind() == NodeKind::kFunctionDecl) return false;  // prune
      if (n.kind() == NodeKind::kVariable) ++vars;
      return true;
    });
  }
  EXPECT_EQ(vars, 1u);  // only $outer
}

TEST(Visitor, ForEachChildDirectOnly) {
  const PhpFile file = parse("<?php $a = 1 + 2;");
  const auto& stmt = *file.statements.at(0);
  std::size_t direct = 0;
  for_each_child(stmt, [&direct](const Node&) { ++direct; });
  EXPECT_EQ(direct, 1u);  // just the Assign
}

TEST(Visitor, CoversControlFlowStatements) {
  const PhpFile file = parse(R"(<?php
if ($a) { $x = 1; } elseif ($b) { $y = 2; } else { $z = 3; }
while ($c) { $w = 4; }
foreach ($arr as $k => $v) { echo $v; }
switch ($s) { case 1: break; default: $d = 5; }
try { f(); } catch (E $e) { g(); } finally { h(); }
for ($i = 0; $i < 3; $i++) { $t = $i; }
)");
  // Smoke: every construct's children are visited without crash, and all
  // variables are found.
  std::size_t vars = 0;
  for (const auto& stmt : file.statements) {
    walk(*stmt, [&vars](const Node& n) {
      if (n.kind() == NodeKind::kVariable) ++vars;
      return true;
    });
  }
  EXPECT_GT(vars, 12u);
}

TEST(Visitor, MinMaxLine) {
  const PhpFile file = parse("<?php\n$a = 1;\nif ($b) {\n  $c = 2;\n}\n");
  const Node& if_stmt = *file.statements.at(1);
  EXPECT_EQ(min_line(if_stmt), 3u);
  EXPECT_EQ(max_line(if_stmt), 4u);
}

TEST(Printer, CoversStatements) {
  const PhpFile file = parse(R"(<?php
global $wpdb;
static $cache = array();
unset($tmp);
throw new E('x');
do { $i++; } while ($i < 3);
)");
  const std::string out = dump(file);
  EXPECT_NE(out.find("(global $wpdb)"), std::string::npos);
  EXPECT_NE(out.find("(static $cache"), std::string::npos);
  EXPECT_NE(out.find("(unset"), std::string::npos);
  EXPECT_NE(out.find("(throw"), std::string::npos);
  EXPECT_NE(out.find("(do-while"), std::string::npos);
}

TEST(Printer, CoversExpressions) {
  const PhpFile file = parse(R"(<?php
$a = isset($x) ? (int)$y : ($z ?? -1);
$b = [1, 'k' => 2];
$c = $obj->m($d)->prop;
$e = Klass::sm() . @risky();
)");
  const std::string out = dump(file);
  EXPECT_NE(out.find("(ternary"), std::string::npos);
  EXPECT_NE(out.find("(cast int"), std::string::npos);
  EXPECT_NE(out.find("(array-lit"), std::string::npos);
  EXPECT_NE(out.find("(method-call m"), std::string::npos);
  EXPECT_NE(out.find("(prop prop"), std::string::npos);
  EXPECT_NE(out.find("(static-call Klass::sm"), std::string::npos);
  EXPECT_NE(out.find("(unary @"), std::string::npos);
}

}  // namespace
}  // namespace uchecker::phpast
