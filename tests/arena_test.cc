#include "support/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace uchecker {
namespace {

bool is_aligned(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, AllocationsAreAligned) {
  Arena arena;
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (const std::size_t size : {1u, 3u, 7u, 100u}) {
      void* p = arena.allocate(size, align);
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(is_aligned(p, align)) << "size=" << size << " align=" << align;
      std::memset(p, 0xAB, size);  // must be writable end to end
    }
  }
}

TEST(Arena, ZeroSizeAllocationReturnsDistinctPointers) {
  Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(Arena, MixedAlignmentsStayAligned) {
  Arena arena;
  (void)arena.allocate(1, 1);  // misalign the bump pointer
  void* p8 = arena.allocate(8, 8);
  EXPECT_TRUE(is_aligned(p8, 8));
  (void)arena.allocate(3, 1);
  void* p16 = arena.allocate(16, 16);
  EXPECT_TRUE(is_aligned(p16, 16));
}

TEST(Arena, GrowsAcrossBlocks) {
  Arena arena(64);  // tiny first block to force growth quickly
  std::vector<char*> ptrs;
  for (int i = 0; i < 100; ++i) {
    char* p = static_cast<char*>(arena.allocate(48, 8));
    std::memset(p, i, 48);
    ptrs.push_back(p);
  }
  // Every earlier allocation must survive later growth.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(ptrs[i][0]), i & 0xFF);
    EXPECT_EQ(static_cast<unsigned char>(ptrs[i][47]), i & 0xFF);
  }
  EXPECT_GE(arena.bytes_allocated(), 100u * 48u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(Arena, LargeObjectFallbackKeepsBumpBlockUsable) {
  Arena arena;
  char* small1 = static_cast<char*>(arena.allocate(16, 1));
  std::memset(small1, 0x11, 16);
  // A dedicated block, larger than any bump block.
  const std::size_t huge = Arena::kMaxBlockSize + 1234;
  char* big = static_cast<char*>(arena.allocate(huge, 8));
  ASSERT_NE(big, nullptr);
  big[0] = 'a';
  big[huge - 1] = 'z';
  // The bump block survives: the next small allocation lands right after
  // the first one rather than in a fresh block.
  char* small2 = static_cast<char*>(arena.allocate(16, 1));
  EXPECT_EQ(small2, small1 + 16);
  // And the earlier small allocation is untouched.
  EXPECT_EQ(small1[0], 0x11);
  EXPECT_EQ(arena.bytes_reserved() >= huge, true);
}

TEST(Arena, LargeObjectAsFirstAllocation) {
  Arena arena;
  const std::size_t huge = Arena::kMaxBlockSize + 1;
  char* big = static_cast<char*>(arena.allocate(huge, 8));
  ASSERT_NE(big, nullptr);
  big[huge - 1] = 'x';
  // Subsequent small allocations still work.
  char* small = static_cast<char*>(arena.allocate(8, 8));
  ASSERT_NE(small, nullptr);
  std::memset(small, 0, 8);
  EXPECT_EQ(big[huge - 1], 'x');
}

TEST(Arena, ResetKeepsFirstBlockWarm) {
  Arena arena;
  void* first = arena.allocate(64, 8);
  // Force extra blocks.
  for (int i = 0; i < 10; ++i) (void)arena.allocate(Arena::kDefaultBlockSize / 2, 8);
  const std::size_t reserved_before = arena.bytes_reserved();
  EXPECT_GT(arena.bytes_allocated(), 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_LT(arena.bytes_reserved(), reserved_before);

  // The first allocation after reset reuses the warm first block: same
  // address, and no new bytes are reserved from malloc.
  const std::size_t reserved_after_reset = arena.bytes_reserved();
  void* again = arena.allocate(64, 8);
  EXPECT_EQ(again, first);
  EXPECT_EQ(arena.bytes_reserved(), reserved_after_reset);
}

TEST(Arena, ResetOnEmptyArenaIsANoop) {
  Arena arena;
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  void* p = arena.allocate(8, 8);
  EXPECT_NE(p, nullptr);
}

TEST(Arena, CopyDetachesFromOriginalBuffer) {
  Arena arena;
  std::string original = "move_uploaded_file";
  const std::string_view view = arena.copy(original);
  EXPECT_EQ(view, "move_uploaded_file");
  EXPECT_NE(view.data(), original.data());
  // Mutating (then destroying) the original must not affect the copy.
  original.assign("clobbered------------");
  original.clear();
  original.shrink_to_fit();
  EXPECT_EQ(view, "move_uploaded_file");
}

TEST(Arena, CopyEmptyDoesNotAllocate) {
  Arena arena;
  const std::size_t before = arena.bytes_allocated();
  const std::string_view view = arena.copy({});
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(arena.bytes_allocated(), before);
}

TEST(Arena, MakeConstructsInPlace) {
  struct Pod {
    int a;
    double b;
  };
  Arena arena;
  Pod* p = arena.make<Pod>(Pod{7, 2.5});
  EXPECT_EQ(p->a, 7);
  EXPECT_EQ(p->b, 2.5);
  EXPECT_TRUE(is_aligned(p, alignof(Pod)));
}

TEST(Arena, MakeSpanCopiesElements) {
  Arena arena;
  std::vector<int> v{1, 2, 3, 4};
  const Span<int> span = arena.make_span(v);
  ASSERT_EQ(span.size(), 4u);
  v[0] = 99;  // the span owns an arena copy, not a view of v
  EXPECT_EQ(span[0], 1);
  EXPECT_EQ(span.back(), 4);
  const Span<int> empty = arena.make_span(std::vector<int>{});
  EXPECT_TRUE(empty.empty());
}

TEST(Arena, MoveTransfersOwnershipWithoutInvalidatingPointers) {
  Arena a;
  char* p = static_cast<char*>(a.allocate(32, 8));
  std::memset(p, 0x5C, 32);
  const std::size_t allocated = a.bytes_allocated();

  Arena b(std::move(a));
  EXPECT_EQ(b.bytes_allocated(), allocated);
  EXPECT_EQ(p[0], 0x5C);  // still readable: blocks moved, not freed
  EXPECT_EQ(a.bytes_allocated(), 0u);  // NOLINT(bugprone-use-after-move)

  // The moved-from arena is reusable.
  void* q = a.allocate(8, 8);
  EXPECT_NE(q, nullptr);

  Arena c;
  c = std::move(b);
  EXPECT_EQ(c.bytes_allocated(), allocated);
  EXPECT_EQ(p[31], 0x5C);
}

TEST(Arena, VectorOfArenasSurvivesReallocation) {
  // The detector and tests store one Arena per file in a std::vector;
  // vector growth moves the Arena objects and must not invalidate any
  // outstanding AST pointer.
  std::vector<Arena> arenas;
  std::vector<char*> ptrs;
  for (int i = 0; i < 32; ++i) {
    arenas.emplace_back();
    char* p = static_cast<char*>(arenas.back().allocate(24, 8));
    std::memset(p, i, 24);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(ptrs[i][0]), i & 0xFF);
  }
}

TEST(Span, ConstConversionAndAccessors) {
  std::vector<int> v{10, 20, 30};
  const Span<const int> s = as_span(v);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.front(), 10);
  EXPECT_EQ(s.back(), 30);
  int sum = 0;
  for (const int x : s) sum += x;
  EXPECT_EQ(sum, 60);
  const Span<int> none;
  EXPECT_TRUE(none.empty());
  const Span<const int> converted = Span<int>(v.data(), v.size());
  EXPECT_EQ(converted.data(), v.data());
}

}  // namespace
}  // namespace uchecker
