// Engine-introspection profiler tests: deterministic fork-site
// attribution, budget post-mortems, the profiling-off byte-identity
// contract, solver attribution, JSON round-trips, and a concurrent
// snapshot exercise (the TSan target in ci/sanitize.sh).
#include "support/profile.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/detector/detector.h"
#include "core/detector/report_io.h"
#include "support/jsonlite.h"

namespace uchecker {
namespace {

core::ScanReport scan(const std::string& handler_php,
                      core::ScanOptions options = {}) {
  core::Application app;
  app.name = "test-app";
  app.files.push_back(core::AppFile{"handler.php", "<?php\n" + handler_php});
  return core::Detector(options).scan(app);
}

// A root whose explosion is loop-driven: a concretely-bounded for loop
// whose body forks on a distinct $_POST key per iteration, plus one
// standalone conditional for contrast. The sink keeps the root past
// locality and the static prefilter (pruned roots never profile).
constexpr const char* kLoopyApp = R"(
$audit = array();
for ($i = 0; $i < 3; $i++) {
    if (isset($_POST['k' . $i])) {
        $audit[] = 'k';
    }
}
if (isset($_POST['solo'])) {
    $audit[] = 'solo';
}
$dest = '/u/' . $_FILES['f']['name'];
move_uploaded_file($_FILES['f']['tmp_name'], $dest);
echo implode(',', $audit);
)";

// A loop wide enough to blow any small path budget before its sink.
constexpr const char* kExplodingApp = R"(
$audit = array();
for ($i = 0; $i < 40; $i++) {
    if (isset($_POST['k' . $i])) {
        $audit[] = 'k';
    }
}
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
echo implode(',', $audit);
)";

// Wall times vary run to run; everything else in a report must not.
void zero_timings(core::ScanReport& report) {
  report.seconds = 0.0;
  for (auto& [phase, ms] : report.phase_ms) ms = 0.0;
  for (core::RootCost& cost : report.root_costs) {
    cost.interp_ms = 0.0;
    cost.solve_ms = 0.0;
  }
}

TEST(ProfileTest, ForkSiteRankingIsDeterministic) {
  core::ScanOptions options;
  options.profile = true;
  const core::ScanReport first = scan(kLoopyApp, options);
  const core::ScanReport second = scan(kLoopyApp, options);
  ASSERT_TRUE(first.profiled);
  ASSERT_EQ(first.profile.roots.size(), 1u);
  const profile::RootProfile& root = first.profile.roots[0];
  EXPECT_FALSE(root.incomplete);
  ASSERT_FALSE(root.fork_sites.empty());
  // Ranked by cumulative paths, resolved to "file:line".
  for (std::size_t i = 1; i < root.fork_sites.size(); ++i) {
    EXPECT_GE(root.fork_sites[i - 1].cumulative_paths,
              root.fork_sites[i].cumulative_paths);
  }
  for (const profile::ForkSiteStats& site : root.fork_sites) {
    EXPECT_EQ(site.site.rfind("handler.php:", 0), 0u) << site.site;
    EXPECT_GT(site.visits, 0u);
    EXPECT_GE(site.cumulative_paths, site.self_paths);
  }
  // The loop's cumulative count includes its body's conditionals, so
  // cumulative must strictly exceed self — the top-of-chain loop is
  // distinguishable from the forks inside it.
  const profile::ForkSiteStats* loop = nullptr;
  for (const profile::ForkSiteStats& site : root.fork_sites) {
    if (site.kind == profile::ForkKind::kLoop) loop = &site;
  }
  ASSERT_NE(loop, nullptr);
  EXPECT_GT(loop->cumulative_paths, loop->self_paths);
  // Determinism: a second scan attributes identically.
  ASSERT_TRUE(second.profiled);
  ASSERT_EQ(second.profile.roots.size(), 1u);
  const profile::RootProfile& again = second.profile.roots[0];
  ASSERT_EQ(again.fork_sites.size(), root.fork_sites.size());
  for (std::size_t i = 0; i < root.fork_sites.size(); ++i) {
    EXPECT_EQ(again.fork_sites[i].site, root.fork_sites[i].site);
    EXPECT_EQ(again.fork_sites[i].visits, root.fork_sites[i].visits);
    EXPECT_EQ(again.fork_sites[i].cumulative_paths,
              root.fork_sites[i].cumulative_paths);
    EXPECT_EQ(again.fork_sites[i].self_paths, root.fork_sites[i].self_paths);
  }
}

TEST(ProfileTest, PostMortemOnBudgetExhaustionNamesDominantLoop) {
  core::ScanOptions options;
  options.profile = true;
  options.budget.max_paths = 32;
  options.budget.loop_unroll = 40;  // let the loop actually explode
  const core::ScanReport report = scan(kExplodingApp, options);
  EXPECT_TRUE(report.budget_exhausted);
  ASSERT_TRUE(report.profiled);
  ASSERT_EQ(report.profile.roots.size(), 1u);
  const profile::RootProfile& root = report.profile.roots[0];
  EXPECT_TRUE(root.incomplete);
  EXPECT_EQ(root.reason, "budget_exhausted");
  EXPECT_GT(root.peak_paths, 32u);
  ASSERT_TRUE(root.post_mortem.has_value());
  const profile::PostMortem& pm = *root.post_mortem;
  EXPECT_EQ(pm.reason, "budget_exhausted");
  EXPECT_EQ(pm.peak_paths, root.peak_paths);
  ASSERT_FALSE(pm.top_sites.empty());
  EXPECT_LE(pm.top_sites.size(), 10u);
  for (std::size_t i = 1; i < pm.top_sites.size(); ++i) {
    EXPECT_GE(pm.top_sites[i - 1].cumulative_paths,
              pm.top_sites[i].cumulative_paths);
  }
  // The explosion lives in the for loop; the post-mortem must say so.
  EXPECT_NE(pm.dominant_loop.find("handler.php:"), std::string::npos)
      << pm.dominant_loop;
  EXPECT_NE(pm.dominant_loop.find("(loop"), std::string::npos)
      << pm.dominant_loop;
}

TEST(ProfileTest, ConditionalOnlyPostMortemFallsBackToTopSite) {
  core::ScanOptions options;
  options.profile = true;
  options.budget.max_paths = 8;
  std::string ladder;  // Cimy in miniature: a pure if/elseif ladder.
  for (int i = 0; i < 12; ++i) {
    ladder += "if (isset($_POST['f" + std::to_string(i) +
              "'])) { $audit[] = 'f'; }\n";
  }
  const core::ScanReport report =
      scan("$audit = array();\n" + ladder +
               "move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . "
               "$_FILES['f']['name']);\n"
               "echo implode(',', $audit);\n",
           options);
  ASSERT_TRUE(report.profiled);
  ASSERT_EQ(report.profile.roots.size(), 1u);
  ASSERT_TRUE(report.profile.roots[0].post_mortem.has_value());
  const profile::PostMortem& pm = *report.profile.roots[0].post_mortem;
  // No loop forked, yet the field still names the dominating construct.
  EXPECT_NE(pm.dominant_loop.find("(conditional"), std::string::npos)
      << pm.dominant_loop;
  ASSERT_FALSE(pm.top_sites.empty());
  EXPECT_NE(pm.dominant_loop.find(pm.top_sites[0].site), std::string::npos);
}

TEST(ProfileTest, ReportsByteIdenticalWithProfilingOff) {
  core::ScanOptions off_options;
  core::ScanOptions on_options;
  on_options.profile = true;
  core::ScanReport off = scan(kLoopyApp, off_options);
  core::ScanReport on = scan(kLoopyApp, on_options);
  const std::string off_json = core::to_json(off);
  const std::string on_json = core::to_json(on);
  EXPECT_EQ(off_json.find("\"profile\""), std::string::npos);
  EXPECT_NE(on_json.find("\"profile\""), std::string::npos);
  // Stripping the profile (what scand does before caching) and
  // normalizing wall times leaves the two reports byte-identical:
  // profiling may add the profile object and nothing else.
  on.profiled = false;
  on.profile = {};
  on.peak_rss_bytes = off.peak_rss_bytes;  // only serialized via profile
  zero_timings(off);
  zero_timings(on);
  EXPECT_EQ(core::to_json(off), core::to_json(on));
}

TEST(ProfileTest, SolverCostIsAttributedToSinkOrigin) {
  core::ScanOptions options;
  options.profile = true;
  const core::ScanReport report = scan(R"(
$dest = '/u/' . $_FILES['f']['name'];
move_uploaded_file($_FILES['f']['tmp_name'], $dest);
)",
                                       options);
  EXPECT_EQ(report.verdict, core::Verdict::kVulnerable);
  ASSERT_TRUE(report.profiled);
  ASSERT_EQ(report.profile.roots.size(), 1u);
  const profile::RootProfile& root = report.profile.roots[0];
  ASSERT_FALSE(root.solver.empty());
  std::uint64_t queries = 0;
  for (const profile::SolverSiteStats& site : root.solver) {
    EXPECT_EQ(site.sink, "move_uploaded_file");
    EXPECT_EQ(site.origin.rfind("handler.php:", 0), 0u) << site.origin;
    queries += site.queries + site.cache_hits;
  }
  EXPECT_GT(queries, 0u);
}

TEST(ProfileTest, ProfileJsonRoundTrips) {
  core::ScanOptions options;
  options.profile = true;
  options.budget.max_paths = 32;
  options.budget.loop_unroll = 40;
  const core::ScanReport report = scan(kExplodingApp, options);
  ASSERT_TRUE(report.profiled);
  const std::string rendered = profile::to_json(report.profile);
  const auto parsed = jsonlite::parse(rendered);
  ASSERT_TRUE(parsed.has_value());
  const auto decoded = profile::from_json(*parsed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(profile::to_json(*decoded), rendered);
  // And through the full report JSON: the profile survives a
  // to_json/from_json cycle attached to its report.
  const std::string report_json = core::to_json(report);
  const auto reparsed = core::report_from_json(report_json);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(reparsed->profiled);
  EXPECT_EQ(core::to_json(*reparsed), report_json);
}

TEST(ProfileTest, PeakRssAndAccountedBytesAreRecorded) {
  const core::ScanReport report = scan(kLoopyApp);
  EXPECT_GT(report.peak_rss_bytes, 0u);
  EXPECT_GT(report.accounted_bytes, 0u);
  EXPECT_NE(core::to_json(report).find("\"accounted_bytes\""),
            std::string::npos);
}

// TSan target: one thread drives the profiler exactly as the
// interpreter would; another snapshots it concurrently (what the scand
// `profile` op does to a live scan in a future in-flight variant).
TEST(ProfileTest, ConcurrentSnapshotIsDataRaceFree) {
  profile::PathProfiler profiler;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::uint64_t observed = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const profile::ExplosionProfile snap = profiler.snapshot();
      for (const profile::RootProfile& root : snap.roots) {
        observed += root.fork_sites.size();
      }
    }
    (void)observed;
  });
  for (int root = 0; root < 50; ++root) {
    profiler.begin_root("root" + std::to_string(root));
    for (int i = 0; i < 20; ++i) {
      profiler.enter_site(profile::ForkKind::kLoop, 1, 10, "for",
                          static_cast<std::size_t>(i));
      profiler.enter_site(profile::ForkKind::kConditional, 1, 11, "if",
                          static_cast<std::size_t>(i + 1));
      profiler.record_solver("move_uploaded_file", 1, 12, 0.25,
                             /*cache_hit=*/i % 2 == 0);
      profiler.sample(static_cast<std::size_t>(2 * i + 2),
                      static_cast<std::size_t>(10 * i), 1024);
      profiler.exit_site(static_cast<std::size_t>(2 * i + 1));
      profiler.exit_site(static_cast<std::size_t>(2 * i + 2));
    }
    profiler.end_root(root % 2 == 0, root % 2 == 0 ? "budget_exhausted" : "");
  }
  done.store(true, std::memory_order_relaxed);
  reader.join();
  const profile::ExplosionProfile final_profile = profiler.take();
  ASSERT_EQ(final_profile.roots.size(), 50u);
  for (const profile::RootProfile& root : final_profile.roots) {
    ASSERT_EQ(root.fork_sites.size(), 2u);
    EXPECT_EQ(root.fork_sites[0].visits, 20u);
    ASSERT_EQ(root.solver.size(), 1u);
    EXPECT_EQ(root.solver[0].queries + root.solver[0].cache_hits, 20u);
  }
}

}  // namespace
}  // namespace uchecker
