// Tests for the configurable sink registry (copy()/rename() extension).
#include "core/sinks.h"

#include <gtest/gtest.h>

#include "core/detector/detector.h"

namespace uchecker::core {
namespace {

TEST(SinkRegistry, PaperDefaults) {
  // Strictly the paper's vocabulary — used for paper-baseline runs.
  const SinkRegistry& reg = SinkRegistry::paper_defaults();
  EXPECT_TRUE(reg.is_sink("move_uploaded_file"));
  EXPECT_TRUE(reg.is_sink("file_put_contents"));
  EXPECT_TRUE(reg.is_sink("file_put_content"));  // the paper's spelling
  EXPECT_FALSE(reg.is_sink("copy"));
  EXPECT_FALSE(reg.is_sink("rename"));
  EXPECT_FALSE(reg.is_sink("echo"));
}

TEST(SinkRegistry, ScanDefaultsIncludeCopyRenameFamily) {
  // The default scan registry additionally recognizes the
  // copy()/rename()-after-staging persistence family.
  const SinkRegistry reg;
  EXPECT_TRUE(reg.is_sink("move_uploaded_file"));
  EXPECT_TRUE(reg.is_sink("copy"));
  EXPECT_TRUE(reg.is_sink("rename"));
  EXPECT_EQ(reg.signature("copy"), SinkSignature::kSrcDst);
  EXPECT_EQ(reg.signature("rename"), SinkSignature::kSrcDst);
  EXPECT_FALSE(reg.is_sink("echo"));
}

TEST(SinkRegistry, Signatures) {
  const SinkRegistry& reg = SinkRegistry::paper_defaults();
  EXPECT_EQ(reg.signature("move_uploaded_file"), SinkSignature::kSrcDst);
  EXPECT_EQ(reg.signature("file_put_contents"), SinkSignature::kDstSrc);
}

TEST(SinkRegistry, AddCustomSink) {
  SinkRegistry reg;
  reg.add(SinkSpec{"copy", SinkSignature::kSrcDst});
  EXPECT_TRUE(reg.is_sink("copy"));
  EXPECT_EQ(reg.signature("copy"), SinkSignature::kSrcDst);
}

TEST(SinkExtension, CopyBasedUploadDetectedByDefault) {
  // copy($tmp, $dst) persists an upload just like move_uploaded_file;
  // the default registry recognizes it out of the box.
  Application app;
  app.name = "copy-upload";
  app.files.push_back(AppFile{"up.php", R"php(<?php
copy($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);
)php"});
  const ScanReport report = Detector().scan(app);
  EXPECT_EQ(report.verdict, Verdict::kVulnerable);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].sink_name, "copy");
}

TEST(SinkExtension, CopyBasedUploadMissedUnderPaperRegistry) {
  // Under the strict paper vocabulary the same app is invisible — that
  // is the coverage gap the copy/rename family closes.
  Application app;
  app.name = "copy-upload";
  app.files.push_back(AppFile{"up.php", R"php(<?php
copy($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);
)php"});
  ScanOptions options;
  options.sinks = SinkRegistry::paper_defaults();
  EXPECT_EQ(Detector(options).scan(app).verdict, Verdict::kNotVulnerable);
}

TEST(SinkExtension, RenameWithValidationStaysSafe) {
  Application app;
  app.name = "rename-safe";
  app.files.push_back(AppFile{"up.php", R"php(<?php
$ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
if (!in_array($ext, array('jpg', 'png'))) {
    wp_die('no');
}
rename($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);
)php"});
  EXPECT_EQ(Detector().scan(app).verdict, Verdict::kNotVulnerable);
}

TEST(SinkExtension, LocalityFollowsCustomSinks) {
  // Without the custom sink there is no analysis root at all.
  Application app;
  app.name = "custom-only";
  app.files.push_back(AppFile{"up.php", R"php(<?php
stash_upload($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);
)php"});
  EXPECT_EQ(Detector().scan(app).roots, 0u);
  ScanOptions options;
  options.sinks.add(SinkSpec{"stash_upload", SinkSignature::kSrcDst});
  EXPECT_EQ(Detector(options).scan(app).roots, 1u);
}

TEST(SinkExtension, DstSrcSignatureRespected) {
  // A hypothetical dst-first writer: the destination is the FIRST arg.
  Application app;
  app.name = "writer";
  app.files.push_back(AppFile{"up.php", R"php(<?php
my_write_file('/www/' . $_FILES['f']['name'], $_FILES['f']['tmp_name']);
)php"});
  ScanOptions options;
  options.sinks.add(SinkSpec{"my_write_file", SinkSignature::kDstSrc});
  const ScanReport report = Detector(options).scan(app);
  EXPECT_EQ(report.verdict, Verdict::kVulnerable);
}

}  // namespace
}  // namespace uchecker::core
