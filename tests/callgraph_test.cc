#include "core/callgraph/callgraph.h"

#include <gtest/gtest.h>

#include "core/callgraph/locality.h"
#include "phpparse/parser.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::core {
namespace {

struct Fixture {
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // declared before files: ASTs live here
  std::vector<phpast::PhpFile> files;
  Program program;
  CallGraph graph;
  LocalityResult locality;

  Fixture(std::initializer_list<std::pair<std::string, std::string>> sources_in) {
    for (const auto& [name, content] : sources_in) {
      const FileId id = sources.add_file(name, content);
      arenas.emplace_back();
      files.push_back(
          phpparse::parse_php(*sources.file(id), diags, arenas.back()));
    }
    std::vector<const phpast::PhpFile*> ptrs;
    for (const auto& f : files) ptrs.push_back(&f);
    program = build_program(ptrs);
    graph = build_call_graph(program);
    locality = analyze_locality(program, graph, sources);
  }

  [[nodiscard]] NodeId find_node(const std::string& name) const {
    for (NodeId i = 0; i < graph.node_count(); ++i) {
      if (graph.node(i).name == name) return i;
    }
    return kNoNode;
  }

  [[nodiscard]] bool has_edge(const std::string& from,
                              const std::string& to) const {
    const NodeId a = find_node(from);
    const NodeId b = find_node(to);
    if (a == kNoNode || b == kNoNode) return false;
    const auto& children = graph.node(a).children;
    return std::find(children.begin(), children.end(), b) != children.end();
  }
};

TEST(Program, RegistersFunctionsAndMethods) {
  Fixture f({{"a.php", R"php(<?php
function topLevel() {}
class Widget {
    public function render() {}
}
)php"}});
  EXPECT_TRUE(f.program.functions.contains("toplevel"));
  EXPECT_TRUE(f.program.functions.contains("widget::render"));
  EXPECT_TRUE(f.program.functions.contains("render"));
}

TEST(CallGraph, FileCallsFunctionEdge) {
  Fixture f({{"a.php", "<?php function g() {} g();"}});
  EXPECT_TRUE(f.has_edge("a.php", "g"));
}

TEST(CallGraph, FunctionCallsFunctionEdge) {
  Fixture f({{"a.php", "<?php function g() { h(); } function h() {}"}});
  EXPECT_TRUE(f.has_edge("g", "h"));
  EXPECT_FALSE(f.has_edge("a.php", "h"));
}

TEST(CallGraph, FilesAccessEdge) {
  Fixture f({{"a.php", "<?php $x = $_FILES['f'];"}});
  EXPECT_TRUE(f.has_edge("a.php", "$_FILES"));
}

TEST(CallGraph, SinkEdges) {
  Fixture f({{"a.php",
              "<?php move_uploaded_file($a, $b); file_put_contents($c, $d);"}});
  EXPECT_TRUE(f.has_edge("a.php", "move_uploaded_file()"));
  EXPECT_TRUE(f.has_edge("a.php", "file_put_contents()"));
}

TEST(CallGraph, IncludeEdgeByBasename) {
  Fixture f({{"main.php", "<?php require_once 'lib/helper.php';"},
             {"lib/helper.php", "<?php function help() {}"}});
  EXPECT_TRUE(f.has_edge("main.php", "lib/helper.php"));
}

TEST(CallGraph, IncludeWithDirnamePrefix) {
  Fixture f({{"main.php", "<?php include dirname(__FILE__) . '/inc/x.php';"},
             {"inc/x.php", "<?php function xf() {}"}});
  EXPECT_TRUE(f.has_edge("main.php", "inc/x.php"));
}

TEST(CallGraph, CallbackEdgeFromStringLiteral) {
  Fixture f({{"a.php", R"php(<?php
add_action('wp_ajax_upload', 'my_handler');
function my_handler() {}
)php"}});
  EXPECT_TRUE(f.has_edge("a.php", "my_handler"));
}

TEST(CallGraph, RecursionDoesNotCreateCycle) {
  Fixture f({{"a.php", R"php(<?php
function rec($n) { return rec($n - 1); }
function a() { b(); }
function b() { a(); }
)php"}});
  const NodeId rec = f.find_node("rec");
  ASSERT_NE(rec, kNoNode);
  EXPECT_TRUE(f.graph.node(rec).children.empty());
  // Mutual recursion keeps only the first direction.
  EXPECT_TRUE(f.has_edge("a", "b"));
  EXPECT_FALSE(f.has_edge("b", "a"));
}

TEST(CallGraph, ArgumentFilesAccessGivesCalleeEdge) {
  // Paper §III-A: "(or its parameter input if a is a function)".
  Fixture f({{"a.php", R"php(<?php
handle($_FILES['pic']);
function handle($file) { move_uploaded_file($file['tmp_name'], '/x'); }
)php"}});
  EXPECT_TRUE(f.has_edge("handle", "$_FILES"));
}

TEST(CallGraph, ReachesIsTransitive) {
  Fixture f({{"a.php", R"php(<?php
function f1() { f2(); }
function f2() { f3(); }
function f3() { move_uploaded_file($a, $b); }
f1();
)php"}});
  EXPECT_TRUE(f.graph.reaches(f.find_node("a.php"),
                              f.find_node("move_uploaded_file()")));
  EXPECT_TRUE(f.graph.reaches_kind(f.find_node("f1"),
                                   CallGraphNode::Kind::kSink));
  EXPECT_FALSE(f.graph.reaches_kind(f.find_node("f3"),
                                    CallGraphNode::Kind::kFilesAccess));
}

TEST(CallGraph, DotRendering) {
  Fixture f({{"a.php", "<?php $x = $_FILES['f'];"}});
  const std::string dot = f.graph.to_dot();
  EXPECT_NE(dot.find("digraph callgraph"), std::string::npos);
  EXPECT_NE(dot.find("$_FILES"), std::string::npos);
}

// --- Locality analysis --------------------------------------------------------

TEST(Locality, NoRootWithoutBothSpecialNodes) {
  // $_FILES but no sink.
  Fixture only_files({{"a.php", "<?php $x = $_FILES['f']['name']; echo $x;"}});
  EXPECT_TRUE(only_files.locality.roots.empty());
  // Sink but no $_FILES.
  Fixture only_sink({{"b.php", "<?php move_uploaded_file('/tmp/a', '/www/b');"}});
  EXPECT_TRUE(only_sink.locality.roots.empty());
}

TEST(Locality, FileRootWhenBothAtTopLevel) {
  Fixture f({{"up.php",
              "<?php move_uploaded_file($_FILES['f']['tmp_name'], '/x');"}});
  ASSERT_EQ(f.locality.roots.size(), 1u);
  EXPECT_NE(f.locality.roots[0].file, nullptr);
  EXPECT_EQ(f.locality.roots[0].file->name, "up.php");
}

TEST(Locality, FunctionRootIsLowerThanFile) {
  Fixture f({{"plugin.php", R"php(<?php
add_action('wp_ajax_up', 'do_upload');
function do_upload() {
    move_uploaded_file($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);
}
)php"}});
  ASSERT_EQ(f.locality.roots.size(), 1u);
  ASSERT_NE(f.locality.roots[0].function, nullptr);
  EXPECT_EQ(f.locality.roots[0].function->name, "do_upload");
}

TEST(Locality, PaperListing1LowestCommonAncestor) {
  // Listing 1 / Fig. 3. Note one deliberate deviation from the paper's
  // figure: handle_uploader's own body reads $_FILES (Listing 1 line 8),
  // so the extended call graph gives it a $_FILES edge and it — not
  // example1.php — is the lowest common ancestor. The paper's Fig. 3
  // omits that edge; with it, the smaller root is strictly better.
  Fixture f({{"example1.php", R"php(<?php
function getFileName($file){
    return $_FILES[$file]['name'];
}
function handle_uploader($file, $savePath){
    $path_array = wp_upload_dir();
    $pathAndName = $path_array['path'] . "/" . $savePath;
    if (!move_uploaded_file($_FILES[$file]['tmp_name'], $pathAndName)) {
        return false;
    }
    return true;
}
if (!handle_uploader("upload_file", getFileName("upload_file"))) {
    echo "File Uploaded failure!";
}
)php"}});
  // The Fig. 3 edges that the paper draws are all present:
  EXPECT_TRUE(f.has_edge("example1.php", "handle_uploader"));
  EXPECT_TRUE(f.has_edge("example1.php", "getfilename"));
  EXPECT_TRUE(f.has_edge("getfilename", "$_FILES"));
  EXPECT_TRUE(f.has_edge("handle_uploader", "move_uploaded_file()"));
  ASSERT_EQ(f.locality.roots.size(), 1u);
  ASSERT_NE(f.locality.roots[0].function, nullptr);
  EXPECT_EQ(f.locality.roots[0].function->name, "handle_uploader");
}

TEST(Locality, AnalyzedPercentIsFractionOfTotal) {
  Fixture f({{"up.php",
              "<?php move_uploaded_file($_FILES['f']['tmp_name'], '/x');"},
             {"big.php",
              "<?php\n$a=1;\n$b=2;\n$c=3;\n$d=4;\n$e=5;\n$f=6;\n$g=7;\n"}});
  ASSERT_EQ(f.locality.roots.size(), 1u);
  EXPECT_GT(f.locality.analyzed_percent(), 0.0);
  EXPECT_LT(f.locality.analyzed_percent(), 50.0);
}

TEST(Locality, BindingCallPrefersFilesArgument) {
  Fixture f({{"a.php", R"php(<?php
save(null);
save($_FILES['pic']);
function save($file) { move_uploaded_file($file['tmp_name'], '/x'); }
)php"}});
  ASSERT_EQ(f.locality.roots.size(), 1u);
  ASSERT_NE(f.locality.roots[0].binding_call, nullptr);
  // The chosen call site is the one passing $_FILES.
  EXPECT_EQ(f.locality.roots[0].binding_call->args.size(), 1u);
  EXPECT_EQ(f.locality.roots[0].binding_call->args[0]->kind(),
            phpast::NodeKind::kArrayAccess);
}

TEST(Locality, MultipleIndependentHandlersGiveMultipleRoots) {
  Fixture f({{"a.php", R"php(<?php
add_action('a', 'upload_a');
add_action('b', 'upload_b');
function upload_a() {
    move_uploaded_file($_FILES['a']['tmp_name'], '/x');
}
function upload_b() {
    move_uploaded_file($_FILES['b']['tmp_name'], '/y');
}
)php"}});
  EXPECT_EQ(f.locality.roots.size(), 2u);
}


TEST(CallGraph, ArrayCallbackEdgeToMethod) {
  Fixture f({{"a.php", R"php(<?php
class Uploader {
    public function __construct() {
        add_action('wp_ajax_up', array($this, 'handle'));
    }
    public function handle() {
        move_uploaded_file($_FILES['f']['tmp_name'], '/x');
    }
}
$u = new Uploader();
)php"}});
  EXPECT_TRUE(f.has_edge("__construct", "handle"));
}

TEST(CallGraph, ArrayCallbackWithClassNameString) {
  Fixture f({{"a.php", R"php(<?php
class Hooks {
    public static function boot() {}
}
add_action('init', array('Hooks', 'boot'));
)php"}});
  EXPECT_TRUE(f.has_edge("a.php", "hooks::boot"));
}

TEST(CallGraph, AdminMenuEdgeIsGated) {
  Fixture f({{"a.php", R"php(<?php
add_action('admin_menu', 'admin_page');
add_action('wp_ajax_x', 'public_handler');
function admin_page() { helper(); }
function helper() {}
function public_handler() {}
)php"}});
  const auto admin_only = f.graph.admin_only_nodes();
  EXPECT_TRUE(admin_only[f.find_node("admin_page")]);
  EXPECT_TRUE(admin_only[f.find_node("helper")]);  // transitively gated
  EXPECT_FALSE(admin_only[f.find_node("public_handler")]);
  EXPECT_FALSE(admin_only[f.find_node("a.php")]);
}

TEST(CallGraph, NonGatedRegistrationWidensGatedEdge) {
  // The same callback registered both behind admin_menu and on a public
  // hook is reachable without privileges.
  Fixture f({{"a.php", R"php(<?php
add_action('admin_menu', 'shared_handler');
add_action('wp_ajax_nopriv_x', 'shared_handler');
function shared_handler() {}
)php"}});
  const auto admin_only = f.graph.admin_only_nodes();
  EXPECT_FALSE(admin_only[f.find_node("shared_handler")]);
}

TEST(Locality, AdminGatingSkipsGatedRoot) {
  const char* src = R"php(<?php
add_action('admin_menu', 'menu');
function menu() { store(); }
function store() {
    move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
}
)php";
  Fixture plain({{"a.php", src}});
  ASSERT_EQ(plain.locality.roots.size(), 1u);

  // Re-run locality with the SVI extension enabled.
  LocalityOptions options;
  options.model_admin_gating = true;
  const LocalityResult gated =
      analyze_locality(plain.program, plain.graph, plain.sources, options);
  EXPECT_TRUE(gated.roots.empty());
}

}  // namespace
}  // namespace uchecker::core
